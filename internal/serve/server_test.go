package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/rfid"
	"repro/rfid/api"
)

// newTestServer builds a server over a small simulated warehouse and returns
// it with the trace's raw streams so tests can ingest real data.
func newTestServer(t *testing.T, queue int) (*Server, *httptest.Server, []rfid.Reading, []rfid.LocationReport) {
	t.Helper()
	simCfg := rfid.DefaultWarehouseConfig()
	simCfg.NumObjects = 6
	simCfg.NumShelfTags = 4
	simCfg.Seed = 9
	trace, err := rfid.SimulateWarehouse(simCfg)
	if err != nil {
		t.Fatalf("SimulateWarehouse: %v", err)
	}
	cfg := rfid.DefaultConfig(rfid.DefaultParams(), trace.World)
	cfg.NumObjectParticles = 150
	cfg.NumReaderParticles = 40
	cfg.Seed = 9
	cfg.ReportPolicy = rfid.ReportEveryEpoch
	runner, err := rfid.NewRunner(cfg, rfid.RunnerConfig{Sharded: true})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	srv, err := New(Config{Runner: runner, QueueSize: queue, IngestWait: 5 * time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	readings, locations := rfid.RawStreams(trace)
	return srv, ts, readings, locations
}

// postJSON posts v as JSON and decodes the response body into out (when
// non-nil), returning the status code.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// getJSON fetches url and decodes the JSON body into out, returning the
// status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// ingestBody converts raw records into the POST /ingest wire shape.
func ingestBody(readings []rfid.Reading, locations []rfid.LocationReport) api.IngestRequest {
	req := api.IngestRequest{}
	for _, r := range readings {
		req.Readings = append(req.Readings, api.Reading{Time: r.Time, Tag: string(r.Tag)})
	}
	for _, l := range locations {
		req.Locations = append(req.Locations, api.LocationReport{
			Time: l.Time, X: l.Pos.X, Y: l.Pos.Y, Z: l.Pos.Z, Phi: l.Phi, HasPhi: l.HasPhi,
		})
	}
	return req
}

// TestServerEndToEnd is the acceptance path: ingest a batch of readings,
// register a location-update query, flush, and read back non-empty snapshot,
// query results and metrics counters.
func TestServerEndToEnd(t *testing.T) {
	_, ts, readings, locations := newTestServer(t, 64)

	// Register queries first so they see the whole clean stream.
	var locInfo struct {
		ID string `json:"id"`
	}
	if code := postJSON(t, ts.URL+"/queries", map[string]any{"kind": "location-updates", "min_change": 0.1}, &locInfo); code != http.StatusCreated {
		t.Fatalf("register location-updates: status %d", code)
	}
	var aggInfo struct {
		ID string `json:"id"`
	}
	if code := postJSON(t, ts.URL+"/queries", map[string]any{
		"kind": "windowed-aggregate", "op": "count", "group_by": "none", "window_epochs": 10,
	}, &aggInfo); code != http.StatusCreated {
		t.Fatalf("register windowed-aggregate: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/queries", map[string]any{"kind": "bogus"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bogus spec: status %d, want 400", code)
	}

	// Ingest the trace in epoch-ranged batches, the way a live reader would:
	// records never arrive for an epoch older than the batch before them.
	maxT := 0
	for _, r := range readings {
		if r.Time > maxT {
			maxT = r.Time
		}
	}
	span := maxT/4 + 1
	for i := 0; i < 4; i++ {
		lo, hi := i*span, (i+1)*span
		var rs []rfid.Reading
		for _, r := range readings {
			if r.Time >= lo && r.Time < hi {
				rs = append(rs, r)
			}
		}
		var locs []rfid.LocationReport
		for _, l := range locations {
			if l.Time >= lo && l.Time < hi {
				locs = append(locs, l)
			}
		}
		var ack struct {
			Queued bool `json:"queued"`
		}
		if code := postJSON(t, ts.URL+"/ingest", ingestBody(rs, locs), &ack); code != http.StatusAccepted || !ack.Queued {
			t.Fatalf("ingest batch %d: status %d ack %+v", i, code, ack)
		}
	}

	// Flush: synchronous barrier, so everything above is processed after 200.
	var flushed struct {
		Events  int `json:"events"`
		Results int `json:"results"`
	}
	if code := postJSON(t, ts.URL+"/flush?windows=true", map[string]any{}, &flushed); code != http.StatusOK {
		t.Fatalf("flush: status %d", code)
	}
	// Ingest ops already advanced the pipeline (hold=0), so the flush is a
	// barrier; with ?windows=true it still surfaces the windowed queries'
	// held-back final epoch.
	if flushed.Results == 0 {
		t.Fatalf("window flush produced no results: %+v", flushed)
	}

	// Snapshot: the overview lists tracked tags; each tag resolves.
	var overview struct {
		Epochs  int      `json:"epochs"`
		Tracked []string `json:"tracked"`
	}
	if code := getJSON(t, ts.URL+"/snapshot", &overview); code != http.StatusOK {
		t.Fatalf("snapshot overview: status %d", code)
	}
	if overview.Epochs == 0 || len(overview.Tracked) != 6 {
		t.Fatalf("overview %+v, want 6 tracked tags", overview)
	}
	var snap api.TagSnapshot
	if code := getJSON(t, ts.URL+"/snapshot/"+overview.Tracked[0], &snap); code != http.StatusOK || !snap.Found {
		t.Fatalf("snapshot %s: status %d found=%v", overview.Tracked[0], code, snap.Found)
	}
	if snap.X == 0 && snap.Y == 0 && snap.Z == 0 {
		t.Errorf("snapshot location is the origin: %+v", snap)
	}
	if code := getJSON(t, ts.URL+"/snapshot/nope", &snap); code != http.StatusNotFound {
		t.Fatalf("unknown snapshot: status %d, want 404", code)
	}

	// Query results: both queries produced rows.
	for _, id := range []string{locInfo.ID, aggInfo.ID} {
		var res struct {
			Query   struct{ NextSeq int }
			Results []struct {
				Seq int             `json:"seq"`
				Row json.RawMessage `json:"row"`
			} `json:"results"`
		}
		if code := getJSON(t, fmt.Sprintf("%s/queries/%s/results?after=-1", ts.URL, id), &res); code != http.StatusOK {
			t.Fatalf("results %s: status %d", id, code)
		}
		if len(res.Results) == 0 {
			t.Fatalf("query %s returned no results", id)
		}
	}

	// Listing and unregistration.
	var list []struct {
		ID string `json:"id"`
	}
	if code := getJSON(t, ts.URL+"/queries", &list); code != http.StatusOK || len(list) != 2 {
		t.Fatalf("list: status %d, %d entries", code, len(list))
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/queries/"+aggInfo.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}

	// Metrics: the Prometheus exposition carries non-zero core counters.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	promText, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, name := range []string{"rfidserve_epochs_total", "rfidserve_readings_total", "rfidserve_particles", "rfidserve_queue_depth"} {
		if !strings.Contains(string(promText), name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	var snapMetrics map[string]float64
	if code := getJSON(t, ts.URL+"/metrics?format=json", &snapMetrics); code != http.StatusOK {
		t.Fatalf("metrics json: status %d", code)
	}
	if snapMetrics["rfidserve_epochs_total"] == 0 {
		t.Error("epochs counter is zero after processing")
	}
	if snapMetrics["rfidserve_readings_total"] == 0 {
		t.Error("readings counter is zero after processing")
	}
	if snapMetrics["rfidserve_particles"] == 0 {
		t.Error("particles gauge is zero after processing")
	}
	if snapMetrics["rfidserve_query_results_total"] == 0 {
		t.Error("query results counter is zero")
	}

	// Health.
	var health struct {
		OK bool `json:"ok"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || !health.OK {
		t.Fatalf("healthz: status %d %+v", code, health)
	}
}

// TestServerConcurrentIngestAndSnapshot hammers ingest, snapshot and metrics
// endpoints from many goroutines; run under -race this is the concurrency
// gate for the serving layer.
func TestServerConcurrentIngestAndSnapshot(t *testing.T) {
	_, ts, readings, locations := newTestServer(t, 16)

	// post/get avoid t.Fatal so they are safe from non-test goroutines.
	post := func(url string, v any) {
		body, err := json.Marshal(v)
		if err != nil {
			t.Errorf("marshal: %v", err)
			return
		}
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Errorf("POST %s: %v", url, err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	get := func(url string) {
		resp, err := http.Get(url)
		if err != nil {
			t.Errorf("GET %s: %v", url, err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	var wg sync.WaitGroup
	// Writer: ingest the trace in small batches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		step := 50
		for lo := 0; lo < len(readings); lo += step {
			hi := lo + step
			if hi > len(readings) {
				hi = len(readings)
			}
			var locs []rfid.LocationReport
			if lo == 0 {
				locs = locations
			}
			post(ts.URL+"/ingest", ingestBody(readings[lo:hi], locs))
		}
		post(ts.URL+"/flush", map[string]any{})
	}()
	// Readers: snapshots and metrics while ingestion runs.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				get(ts.URL + "/snapshot")
				get(ts.URL + "/snapshot/obj-000")
				get(ts.URL + "/metrics?format=json")
			}
		}()
	}
	wg.Wait()

	// The stream fully processed despite the concurrent reads.
	var flushed struct {
		Events int `json:"events"`
	}
	if code := postJSON(t, ts.URL+"/flush", map[string]any{}, &flushed); code != http.StatusOK {
		t.Fatalf("final flush: status %d", code)
	}
	var overview struct {
		Buffered int `json:"buffered_epochs"`
		Epochs   int `json:"epochs"`
	}
	getJSON(t, ts.URL+"/snapshot", &overview)
	if overview.Buffered != 0 {
		t.Errorf("epochs still buffered after flush: %d", overview.Buffered)
	}
	if overview.Epochs == 0 {
		t.Error("no epochs processed")
	}
}

// TestServerBackpressure pins the bounded-queue behavior: with a tiny queue
// and a short wait, a burst of ingests either queues or fails with 503 —
// never blocks forever or panics.
func TestServerBackpressure(t *testing.T) {
	srv, ts, readings, _ := newTestServer(t, 1)
	srv.defaultSession().cfg.IngestWait = 10 * time.Millisecond

	batch := readings
	if len(batch) > 100 {
		batch = batch[:100]
	}
	saw503 := false
	for i := 0; i < 30; i++ {
		body, _ := json.Marshal(ingestBody(batch, nil))
		resp, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusServiceUnavailable:
			saw503 = true
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	// Drain; the server must stay usable after backpressure.
	if code := postJSON(t, ts.URL+"/flush", map[string]any{}, nil); code != http.StatusOK {
		t.Fatalf("flush after backpressure: status %d", code)
	}
	_ = saw503 // bursty queue pressure is timing-dependent; 202-only runs are fine
}

// TestServerCloseRejectsIngest pins shutdown behavior.
func TestServerCloseRejectsIngest(t *testing.T) {
	srv, ts, readings, _ := newTestServer(t, 4)
	srv.Close()
	if code := postJSON(t, ts.URL+"/ingest", ingestBody(readings[:1], nil), nil); code != http.StatusServiceUnavailable {
		t.Fatalf("ingest after close: status %d, want 503", code)
	}
	srv.Close() // idempotent
}
