package serve

import (
	"runtime"
	"sync"
)

// The shared session scheduler: instead of one dedicated engine goroutine per
// session, a fixed worker pool (default GOMAXPROCS) pulls runnable sessions
// off a FIFO run queue and drains their bounded op queues. A session's op
// queue is its pending-work list; the run queue holds sessions that have work
// (or a pending startup).
//
// Determinism: per-session ordering is preserved by pinning — a session is on
// the run queue at most once (the schedState CAS below) and a popped session
// is drained under its pinMu, so at most one worker ever mutates a session's
// engine, WAL or registry at a time. Ops still apply in exactly the order the
// bounded channel received them, which is the same order the WAL logs them;
// the pool size therefore changes only *when* a session runs, never *what*
// it computes. This is the single-engine-goroutine invariant of the previous
// design, carried by a lock instead of a goroutine identity.
//
// Lost-wakeup freedom: producers wake(s) after enqueueing an op. If the CAS
// idle->queued fails the session is already queued or running; a running
// worker re-checks s.runnable() after it stores schedIdle back, so an op that
// arrived during the dispatch (and lost its wake to the running state)
// re-queues the session then.

// Session scheduling states (session.schedState).
const (
	schedIdle int32 = iota
	schedQueued
	schedRunning
)

// dispatchQuantum bounds how many ops one dispatch drains before the session
// yields the worker, so a hot session cannot starve others on the shared
// pool.
const dispatchQuantum = 32

// scheduler is the shared run queue + worker pool.
type scheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*session // FIFO of runnable sessions, each present at most once
	closed bool
	wg     sync.WaitGroup
}

// newScheduler starts a scheduler with the given worker-pool size
// (0 = GOMAXPROCS).
func newScheduler(workers int) *scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sc := &scheduler{}
	sc.cond = sync.NewCond(&sc.mu)
	sc.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go sc.worker()
	}
	return sc
}

// wake marks a session runnable. Idempotent and cheap when the session is
// already queued or running; must be called after every op enqueued outside a
// dispatch.
func (sc *scheduler) wake(s *session) {
	if s.halted.Load() {
		return
	}
	if !s.schedState.CompareAndSwap(schedIdle, schedQueued) {
		return // already queued, or running (the worker re-checks on exit)
	}
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		s.schedState.Store(schedIdle)
		return
	}
	sc.queue = append(sc.queue, s)
	sc.cond.Signal()
	sc.mu.Unlock()
}

// next blocks until a session is runnable (nil when the scheduler stopped).
func (sc *scheduler) next() *session {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for len(sc.queue) == 0 && !sc.closed {
		sc.cond.Wait()
	}
	if sc.closed {
		return nil
	}
	s := sc.queue[0]
	sc.queue[0] = nil
	sc.queue = sc.queue[1:]
	if len(sc.queue) == 0 {
		sc.queue = nil // reclaim the crept backing array
	}
	return s
}

// worker is one pool goroutine: pop, pin, drain, repeat.
func (sc *scheduler) worker() {
	defer sc.wg.Done()
	for {
		s := sc.next()
		if s == nil {
			return
		}
		s.schedState.Store(schedRunning)
		s.dispatch()
		s.schedState.Store(schedIdle)
		// Ops that arrived while schedState was running lost their wake to
		// the failed CAS; re-queue the session for them here.
		if s.runnable() {
			sc.wake(s)
		}
	}
}

// stop shuts the pool down. Sessions must already be closed (halted): their
// queued ops are abandoned exactly as the per-session goroutine design
// abandoned ops queued behind quit.
func (sc *scheduler) stop() {
	sc.mu.Lock()
	sc.closed = true
	sc.queue = nil
	sc.cond.Broadcast()
	sc.mu.Unlock()
	sc.wg.Wait()
}

// runnable reports whether the session has pending work for the pool.
func (s *session) runnable() bool {
	return !s.halted.Load() && (len(s.ops) > 0 || !s.started.Load())
}

// dispatch drains up to dispatchQuantum ops while holding the session pin.
// This (plus recovery in startup and hydrate) is the ONLY place session
// engine state mutates, which is what "engine goroutine" means after the
// scheduler refactor: every comment in durable.go saying "engine goroutine
// only" now reads "pinned worker only".
func (s *session) dispatch() {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	if s.halted.Load() {
		return
	}
	if !s.started.Load() {
		if err := s.startup(); err != nil {
			s.log.Error("startup failed", "err", err)
			// Keep draining ops so clients get errors instead of hangs.
		}
		s.started.Store(true)
	}
	touched := false
	defer func() {
		if touched && s.res != nil {
			s.res.touch(s)
		}
	}()
	for n := 0; n < dispatchQuantum; n++ {
		if s.halted.Load() {
			return
		}
		select {
		case <-s.quit:
			return
		default:
		}
		select {
		case o := <-s.ops:
			if o.evict {
				res := s.handleEvictOp()
				if o.done != nil {
					o.done <- res
				}
				continue
			}
			// First touch of an evicted session: transparently restore the
			// engine from its checkpoint + WAL before the op applies. A
			// shutdown op must NOT hydrate — closing an evicted session has
			// nothing to seal (its durable state already equals the
			// checkpoint), and rebuilding a particle filter just to close it
			// is the bug the DELETE fast path exists to avoid.
			if !o.shutdown && serverState(s.state.Load()) == stateEvicted {
				if err := s.hydrate(); err != nil {
					s.log.Error("hydration failed", "err", err)
				}
			}
			res := s.handleOp(o)
			if o.done != nil {
				o.done <- res
			}
			if !o.shutdown {
				touched = true
			}
		default:
			return
		}
	}
}
