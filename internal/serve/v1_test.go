package serve

import (
	"net/http"
	"strings"
	"testing"

	"repro/rfid/api"
)

// TestV1SessionSurface exercises the v1 control-plane handlers and their
// error envelopes directly over HTTP.
func TestV1SessionSurface(t *testing.T) {
	srv, ts, _, _ := newTestServer(t, 8)
	srv.cfg.MaxSessions = 3 // default + two more

	// Malformed body: 400.
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: status %d, want 400", resp.StatusCode)
	}

	// Create with server-assigned id.
	var created api.Session
	if code := postJSON(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{
		Source: api.SourceSynthetic,
		Engine: &api.EngineConfig{ObjectParticles: 40, ReaderParticles: 10},
	}, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if created.ID != "s1" || created.State != "serving" || created.Durable {
		t.Fatalf("created = %+v, want s1/serving/non-durable", created)
	}

	// Invalid client-chosen ids and reserved/duplicate ids.
	for _, tc := range []struct {
		id   string
		want int
	}{
		{"default", http.StatusConflict},
		{"s1", http.StatusConflict},
		{"UPPER", http.StatusBadRequest},
		{"-leading", http.StatusBadRequest},
		{strings.Repeat("x", 65), http.StatusBadRequest},
	} {
		if code := postJSON(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{ID: tc.id}, nil); code != tc.want {
			t.Errorf("create id %q: status %d, want %d", tc.id, code, tc.want)
		}
	}

	// Session limit: the third create (beyond default + s1 + one more) fails
	// with 503 unavailable.
	if code := postJSON(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{ID: "roomy"}, nil); code != http.StatusCreated {
		t.Fatalf("second create: status %d", code)
	}
	var env api.ErrorEnvelope
	if code := postJSON(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{ID: "overflow"}, &env); code != http.StatusServiceUnavailable {
		t.Fatalf("create past limit: status %d, want 503", code)
	}
	if env.Error == nil || env.Error.Code != api.ErrUnavailable {
		t.Fatalf("limit envelope = %+v, want unavailable", env.Error)
	}

	// GET one session / list.
	var got api.Session
	if code := getJSON(t, ts.URL+"/v1/sessions/s1", &got); code != http.StatusOK || got.ID != "s1" {
		t.Fatalf("get s1: status %d, %+v", code, got)
	}
	var list api.SessionList
	if code := getJSON(t, ts.URL+"/v1/sessions", &list); code != http.StatusOK || len(list.Sessions) != 3 {
		t.Fatalf("list: status %d, %d sessions, want 3", code, len(list.Sessions))
	}
	if !list.Sessions[0].Default {
		t.Fatalf("list is not default-first: %+v", list.Sessions)
	}

	// Deletes: unknown 404, default 409, real 204 (and frees a limit slot).
	del := func(id string) int {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("DELETE %s: %v", id, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := del("ghost"); code != http.StatusNotFound {
		t.Fatalf("delete ghost: status %d", code)
	}
	if code := del("default"); code != http.StatusConflict {
		t.Fatalf("delete default: status %d", code)
	}
	if code := del("roomy"); code != http.StatusNoContent {
		t.Fatalf("delete roomy: status %d", code)
	}
	// The deleted session's labelled metric series are retired with it.
	var mm map[string]float64
	getJSON(t, ts.URL+"/metrics?format=json", &mm)
	for name := range mm {
		if strings.Contains(name, `session="roomy"`) {
			t.Fatalf("deleted session's series %q still exposed", name)
		}
	}
	if code := postJSON(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{ID: "replacement"}, nil); code != http.StatusCreated {
		t.Fatalf("create after delete freed a slot: status %d", code)
	}

	// Data-plane routes resolve through {sid}: unknown session 404s on every
	// verb, the live one serves.
	if code := postJSON(t, ts.URL+"/v1/sessions/ghost/flush", map[string]any{}, nil); code != http.StatusNotFound {
		t.Fatalf("flush on ghost: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/sessions/s1/ingest", api.IngestRequest{
		Readings:  []api.Reading{{Time: 0, Tag: "v1-obj"}},
		Locations: []api.LocationReport{{Time: 0, X: 1, Y: 2, Z: 3}},
	}, nil); code != http.StatusAccepted {
		t.Fatalf("v1 ingest: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/sessions/s1/flush", map[string]any{}, nil); code != http.StatusOK {
		t.Fatalf("v1 flush: status %d", code)
	}
	var snap api.TagSnapshot
	if code := getJSON(t, ts.URL+"/v1/sessions/s1/snapshot/v1-obj", &snap); code != http.StatusOK || !snap.Found {
		t.Fatalf("v1 snapshot: status %d found=%v", code, snap.Found)
	}
	// The default session never saw that tag — isolation through the alias.
	if code := getJSON(t, ts.URL+"/snapshot/v1-obj", nil); code != http.StatusNotFound {
		t.Fatalf("default saw v1 session's tag: status %d", code)
	}

	// Query surface on the v1 path.
	var info api.QueryInfo
	if code := postJSON(t, ts.URL+"/v1/sessions/s1/queries", map[string]any{"kind": "location-updates"}, &info); code != http.StatusCreated {
		t.Fatalf("v1 register: status %d", code)
	}
	var page api.ResultsPage
	if code := getJSON(t, ts.URL+"/v1/sessions/s1/queries/"+info.ID+"/results?after=-1", &page); code != http.StatusOK {
		t.Fatalf("v1 results: status %d", code)
	}
	var qlist api.QueryList
	if code := getJSON(t, ts.URL+"/v1/sessions/s1/queries", &qlist); code != http.StatusOK || len(qlist) != 1 {
		t.Fatalf("v1 query list: status %d len %d", code, len(qlist))
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/s1/queries/"+info.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("v1 unregister: status %d", resp.StatusCode)
	}

	// v1 health + metrics mirror the legacy endpoints.
	var hz api.Health
	if code := getJSON(t, ts.URL+"/v1/healthz", &hz); code != http.StatusOK || !hz.OK || hz.Sessions != 3 {
		t.Fatalf("v1 healthz: status %d %+v", code, hz)
	}
	var m map[string]float64
	if code := getJSON(t, ts.URL+"/v1/metrics?format=json", &m); code != http.StatusOK {
		t.Fatalf("v1 metrics: status %d", code)
	}
	if m[`rfidserve_readings_total{session="s1"}`] == 0 {
		t.Fatalf("no labelled series for s1 in metrics: %v", m)
	}
	if m["rfidserve_sessions"] != 3 {
		t.Fatalf("rfidserve_sessions = %v, want 3", m["rfidserve_sessions"])
	}

	// Registry() exposes the default session's registry.
	if srv.Registry() == nil {
		t.Fatal("Registry() returned nil")
	}

	// After Close, session creation is refused — both at the handler gate
	// and (for requests already past it) by the locked admission check, so a
	// create can never slip a running session past the shutdown sweep.
	srv.Close()
	if code := postJSON(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{ID: "late"}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("create after Close: status %d, want 503", code)
	}
	if _, err := srv.addSession(api.CreateSessionRequest{ID: "later"}, false); err == nil {
		t.Fatal("addSession after Close succeeded")
	}
}

// TestPromExpositionWithLabels pins the Prometheus text format: labelled and
// bare series of one base name share a single HELP/TYPE header.
func TestPromExpositionWithLabels(t *testing.T) {
	_, ts, _, _ := newTestServer(t, 8)
	if code := postJSON(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{ID: "labelled"}, nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	body := getRaw(t, ts.URL+"/metrics")
	if got := strings.Count(body, "# TYPE rfidserve_epochs_total "); got != 1 {
		t.Fatalf("TYPE header for rfidserve_epochs_total appears %d times, want exactly 1", got)
	}
	if !strings.Contains(body, `rfidserve_epochs_total{session="labelled"} `) {
		t.Fatalf("labelled series missing from exposition:\n%s", body)
	}
	if !strings.Contains(body, "\nrfidserve_epochs_total 0") {
		t.Fatalf("bare default-session series missing from exposition")
	}
}
