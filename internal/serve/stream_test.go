package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"repro/rfid"
	"repro/rfid/api"
	"repro/rfid/client"
	"repro/rfid/wire"
)

// newStreamTestServer is newTestServer with one epoch of lateness slack
// (HoldEpochs 1): with the default hold of 0 an Advance at a mid-epoch batch
// boundary seals that epoch partially and drops the rest as late, so the
// final engine state would depend on where batches happen to split. One epoch
// of slack makes state a function of the record stream alone, which is what
// lets these tests compare a streamed run against an HTTP reference run
// byte for byte.
func newStreamTestServer(t *testing.T) (*Server, *httptest.Server, []rfid.Reading, []rfid.LocationReport) {
	t.Helper()
	simCfg := rfid.DefaultWarehouseConfig()
	simCfg.NumObjects = 6
	simCfg.NumShelfTags = 4
	simCfg.Seed = 9
	trace, err := rfid.SimulateWarehouse(simCfg)
	if err != nil {
		t.Fatalf("SimulateWarehouse: %v", err)
	}
	cfg := rfid.DefaultConfig(rfid.DefaultParams(), trace.World)
	cfg.NumObjectParticles = 150
	cfg.NumReaderParticles = 40
	cfg.Seed = 9
	cfg.ReportPolicy = rfid.ReportEveryEpoch
	runner, err := rfid.NewRunner(cfg, rfid.RunnerConfig{Sharded: true, HoldEpochs: 1})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	srv, err := New(Config{Runner: runner, QueueSize: 64, IngestWait: 5 * time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	readings, locations := rfid.RawStreams(trace)
	return srv, ts, readings, locations
}

// stateFingerprint renders a session's externally visible state (overview +
// every tracked tag's belief) into one comparable string.
func stateFingerprint(t *testing.T, base, sid string) string {
	t.Helper()
	var over api.SnapshotOverview
	if code := getJSON(t, base+"/v1/sessions/"+sid+"/snapshot", &over); code != http.StatusOK {
		t.Fatalf("snapshot: status %d", code)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "epochs=%d watermark=%d reader=%+v\n", over.Epochs, over.Watermark, over.Reader)
	for _, tag := range over.Tracked {
		var snap api.TagSnapshot
		if code := getJSON(t, base+"/v1/sessions/"+sid+"/snapshot/"+url.PathEscape(tag), &snap); code != http.StatusOK {
			t.Fatalf("snapshot %s: status %d", tag, code)
		}
		data, _ := json.Marshal(snap)
		buf.Write(data)
		buf.WriteByte('\n')
	}
	return buf.String()
}

// referenceRun ingests the whole trace over plain HTTP and returns the
// resulting state fingerprint.
func referenceRun(t *testing.T, readings []rfid.Reading, locations []rfid.LocationReport) string {
	t.Helper()
	_, ts, _, _ := newStreamTestServer(t)
	if code := postJSON(t, ts.URL+"/v1/sessions/default/ingest", ingestBody(readings, locations), nil); code != http.StatusAccepted {
		t.Fatalf("reference ingest: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/sessions/default/flush", struct{}{}, nil); code != http.StatusOK {
		t.Fatalf("reference flush: status %d", code)
	}
	return stateFingerprint(t, ts.URL, "default")
}

// streamAll pushes the trace through a StreamIngester in time order (readings
// and location reports merged, exactly the stream a live deployment would
// produce — a record arriving long after its epoch would be dropped as late),
// calling mid halfway through (the hook reconnect tests use to cut the
// connection).
func streamAll(t *testing.T, st *client.StreamIngester, readings []rfid.Reading, locations []rfid.LocationReport, mid func()) {
	t.Helper()
	half := (len(readings) + len(locations)) / 2
	i, j, n := 0, 0, 0
	for i < len(readings) || j < len(locations) {
		if n == half && mid != nil {
			mid()
		}
		n++
		if j < len(locations) && (i >= len(readings) || locations[j].Time <= readings[i].Time) {
			l := locations[j]
			j++
			if err := st.AddLocation(api.LocationReport{
				Time: l.Time, X: l.Pos.X, Y: l.Pos.Y, Z: l.Pos.Z, Phi: l.Phi, HasPhi: l.HasPhi,
			}); err != nil {
				t.Fatalf("AddLocation: %v", err)
			}
		} else {
			r := readings[i]
			i++
			if err := st.AddReading(r.Time, string(r.Tag)); err != nil {
				t.Fatalf("AddReading: %v", err)
			}
		}
	}
}

// TestStreamIngestEndToEnd streams the full trace through the SDK's binary
// ingester and checks the resulting engine state is identical to the plain
// HTTP-batch reference run — same records, different transport, same state.
func TestStreamIngestEndToEnd(t *testing.T) {
	srv, ts, readings, locations := newStreamTestServer(t)
	want := referenceRun(t, readings, locations)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var acks int
	st := client.New(ts.URL).Default().Stream(client.StreamOptions{
		BatchSize: 64,
		OnAck:     func(api.StreamAck) { acks++ },
	})
	streamAll(t, st, readings, locations, nil)
	if err := st.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := st.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if acks == 0 {
		t.Fatal("no acknowledgements observed")
	}
	if ack := st.Acked(); ack.UpTo == 0 {
		t.Fatalf("final ack = %+v, want non-zero UpTo", ack)
	}
	if code := postJSON(t, ts.URL+"/v1/sessions/default/flush", struct{}{}, nil); code != http.StatusOK {
		t.Fatalf("flush: status %d", code)
	}
	if got := stateFingerprint(t, ts.URL, "default"); got != want {
		t.Errorf("streamed state differs from HTTP reference run:\n got %q\nwant %q", got, want)
	}
	sess, _ := srv.session(DefaultSessionID)
	if n := sess.streamConns.Value(); n != 1 {
		t.Errorf("stream connections = %d, want 1", n)
	}
}

// TestStreamReconnectResume kills the server side of the connection
// mid-stream and checks the ingester reconnects, resumes from the server's
// acknowledged sequence and lands on state identical to an uninterrupted
// reference run — the exactly-once contract.
func TestStreamReconnectResume(t *testing.T) {
	srv, ts, readings, locations := newStreamTestServer(t)
	want := referenceRun(t, readings, locations)
	sess, _ := srv.session(DefaultSessionID)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st := client.New(ts.URL).Default().Stream(client.StreamOptions{
		BatchSize:     16,
		FlushInterval: 5 * time.Millisecond,
		ReconnectWait: 10 * time.Millisecond,
	})
	streamAll(t, st, readings, locations, func() {
		// Let some batches reach the server, then cut the connection from the
		// server side — the client only notices on its next read/write.
		deadline := time.Now().Add(5 * time.Second)
		for st.Acked().UpTo == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if sc := sess.stream.Load(); sc != nil {
			sc.kill()
		} else {
			t.Error("no active stream to kill")
		}
	})
	if err := st.Flush(ctx); err != nil {
		t.Fatalf("Flush after reconnect: %v", err)
	}
	if err := st.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if code := postJSON(t, ts.URL+"/v1/sessions/default/flush", struct{}{}, nil); code != http.StatusOK {
		t.Fatalf("flush: status %d", code)
	}
	if got := stateFingerprint(t, ts.URL, "default"); got != want {
		t.Errorf("state after reconnect differs from uninterrupted run:\n got %q\nwant %q", got, want)
	}
	if n := sess.streamConns.Value(); n < 2 {
		t.Errorf("stream connections = %d, want >= 2 (a reconnect happened)", n)
	}
}

// rawStream opens a stream connection by hand (dial, upgrade, hello) so tests
// can speak raw frames at the server.
type rawStream struct {
	t    *testing.T
	conn net.Conn
	br   *bufio.Reader
	fr   *wire.FrameReader
	enc  wire.Encoder
}

func dialRawStream(t *testing.T, tsURL, sid string) (*rawStream, api.StreamHello) {
	t.Helper()
	u, err := url.Parse(tsURL)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialTimeout("tcp", u.Host, 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	fmt.Fprintf(conn, "POST /v1/sessions/%s/stream HTTP/1.1\r\nHost: %s\r\nConnection: Upgrade\r\nUpgrade: rfid-stream/1\r\nContent-Length: 0\r\n\r\n", sid, u.Host)
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("handshake: status %d: %s", resp.StatusCode, body)
	}
	rs := &rawStream{t: t, conn: conn, br: br, fr: wire.NewFrameReader(br, wire.DefaultMaxFramePayload)}
	payload, err := rs.fr.Next()
	if err != nil {
		t.Fatalf("read hello: %v", err)
	}
	var dec wire.Decoder
	dec.Reset(payload)
	if kind := dec.Uvarint(); kind != wire.KindHello {
		t.Fatalf("first frame kind = %d, want hello", kind)
	}
	hello, err := wire.DecodeHello(&dec)
	if err != nil {
		t.Fatalf("decode hello: %v", err)
	}
	return rs, hello
}

// sendBatch writes one batch frame with the given sequence number.
func (rs *rawStream) sendBatch(seq uint64, b wire.APIBatch) {
	rs.t.Helper()
	rs.enc.Reset()
	wire.AppendBatchFrame(&rs.enc, seq, b)
	if _, err := rs.conn.Write(wire.AppendFrame(nil, rs.enc.Bytes())); err != nil {
		rs.t.Fatalf("send batch %d: %v", seq, err)
	}
}

// next reads one server frame and returns its kind plus a decoder positioned
// after it.
func (rs *rawStream) next() (uint64, *wire.Decoder) {
	rs.t.Helper()
	payload, err := rs.fr.Next()
	if err != nil {
		rs.t.Fatalf("read frame: %v", err)
	}
	dec := new(wire.Decoder)
	dec.Reset(payload)
	return dec.Uvarint(), dec
}

func (rs *rawStream) expectAck(upTo uint64) api.StreamAck {
	rs.t.Helper()
	kind, dec := rs.next()
	if kind != wire.KindAck {
		rs.t.Fatalf("frame kind = %d, want ack", kind)
	}
	ack, err := wire.DecodeAck(dec)
	if err != nil {
		rs.t.Fatalf("decode ack: %v", err)
	}
	if ack.UpTo != upTo {
		rs.t.Fatalf("ack.UpTo = %d, want %d", ack.UpTo, upTo)
	}
	return ack
}

// TestStreamProtocolDupAndGap pins the raw-wire resume semantics: a duplicate
// sequence number is skipped but re-acknowledged, and a gap is a terminal
// protocol error reported through the structured error frame.
func TestStreamProtocolDupAndGap(t *testing.T) {
	_, ts, _, _ := newTestServer(t, 8)
	rs, hello := dialRawStream(t, ts.URL, "default")
	if hello.ResumeAfter != 0 || hello.Window < 1 {
		t.Fatalf("hello = %+v, want resume 0 and a positive window", hello)
	}
	b := wire.APIBatch{Readings: []api.Reading{{Time: 0, Tag: "raw-obj"}}}
	rs.sendBatch(1, b)
	rs.expectAck(1)
	// Duplicate: already applied, must be re-acked, not re-applied.
	rs.sendBatch(1, b)
	rs.expectAck(1)
	// In-order next batch still works after the duplicate.
	rs.sendBatch(2, wire.APIBatch{Readings: []api.Reading{{Time: 1, Tag: "raw-obj"}}})
	rs.expectAck(2)
	// Gap: seq 4 after 2 is a protocol violation answered with an error frame.
	rs.sendBatch(4, b)
	for {
		kind, dec := rs.next()
		if kind == wire.KindAck {
			continue // a straggler re-ack may precede the error
		}
		if kind != wire.KindError {
			t.Fatalf("frame kind = %d, want error", kind)
		}
		se, err := wire.DecodeError(dec)
		if err != nil {
			t.Fatalf("decode error frame: %v", err)
		}
		if se.Code != api.ErrBadRequest {
			t.Fatalf("error code = %q, want %q", se.Code, api.ErrBadRequest)
		}
		break
	}
	// The server tears the connection down after the error frame.
	if _, err := rs.fr.Next(); err == nil {
		t.Fatal("connection still open after protocol error")
	}
}

// TestStreamTakeover pins the single-stream policy: a second stream on the
// same session kicks the first connection out and takes over at the correct
// resume point.
func TestStreamTakeover(t *testing.T) {
	_, ts, _, _ := newTestServer(t, 8)
	rs1, _ := dialRawStream(t, ts.URL, "default")
	rs1.sendBatch(1, wire.APIBatch{Readings: []api.Reading{{Time: 0, Tag: "tk-obj"}}})
	rs1.expectAck(1)
	rs2, hello2 := dialRawStream(t, ts.URL, "default")
	if hello2.ResumeAfter != 1 {
		t.Fatalf("takeover hello.ResumeAfter = %d, want 1", hello2.ResumeAfter)
	}
	// The first connection is dead: reads drain to an error.
	_ = rs1.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		if _, err := rs1.fr.Next(); err != nil {
			break
		}
	}
	rs2.sendBatch(2, wire.APIBatch{Readings: []api.Reading{{Time: 1, Tag: "tk-obj"}}})
	rs2.expectAck(2)
}

// TestStreamDecodeZeroAlloc pins the server decode hot path: after warm-up
// (scratch slices grown, tags interned, frame buffer sized), decoding a batch
// frame into the engine's record representation allocates nothing.
func TestStreamDecodeZeroAlloc(t *testing.T) {
	sc := newStreamConn(nil, 4)
	sb := <-sc.free
	batch := wire.APIBatch{}
	for i := 0; i < 64; i++ {
		batch.Readings = append(batch.Readings, api.Reading{Time: i / 8, Tag: fmt.Sprintf("obj-%d", i%16)})
	}
	for i := 0; i < 8; i++ {
		batch.Locations = append(batch.Locations, api.LocationReport{Time: i, X: float64(i), Y: 2, Z: 3, Phi: 0.5, HasPhi: true})
	}
	var enc wire.Encoder
	wire.AppendBatchFrame(&enc, 1, batch)
	frame := wire.AppendFrame(nil, enc.Bytes())
	const total = 256
	buf := bytes.Repeat(frame, total)
	rd := bytes.NewReader(buf)
	fr := wire.NewFrameReader(rd, 1<<20)
	var dec wire.Decoder
	decodeOne := func() {
		payload, err := fr.Next()
		if err != nil {
			t.Fatalf("frame: %v", err)
		}
		dec.Reset(payload)
		if kind := dec.Uvarint(); kind != wire.KindBatch {
			t.Fatalf("kind = %d", kind)
		}
		_ = dec.Uvarint() // seq
		sb.readings = sb.readings[:0]
		sb.locations = sb.locations[:0]
		if err := wire.DecodeBatch(&dec, sb); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if dec.Remaining() != 0 {
			t.Fatalf("%d trailing bytes", dec.Remaining())
		}
	}
	for i := 0; i < 16; i++ {
		decodeOne() // warm up scratch growth and the tag intern table
	}
	if avg := testing.AllocsPerRun(128, decodeOne); avg != 0 {
		t.Errorf("stream decode path allocates %v allocs/batch, want 0", avg)
	}
	if len(sb.readings) != 64 || len(sb.locations) != 8 {
		t.Fatalf("decoded %d readings / %d locations, want 64/8", len(sb.readings), len(sb.locations))
	}
}
