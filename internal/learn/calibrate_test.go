package learn

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/sensor"
	"repro/internal/sim"
	"repro/internal/stats"
)

// trainingTrace builds a small warehouse training trace with the given number
// of tags whose locations are known (shelf tags).
func trainingTrace(t *testing.T, knownTags int, seed int64) *sim.Trace {
	t.Helper()
	cfg := sim.DefaultWarehouseConfig()
	cfg.NumObjects = 20
	cfg.NumShelfTags = 20
	cfg.Seed = seed
	trace, err := sim.GenerateWarehouse(cfg)
	if err != nil {
		t.Fatalf("GenerateWarehouse: %v", err)
	}
	return trace.SplitForTraining(knownTags)
}

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Iterations = 2
	cfg.ObjectParticles = 80
	cfg.ReaderParticles = 30
	return cfg
}

func TestCalibrateLearnsDecayingSensorModel(t *testing.T) {
	trace := trainingTrace(t, 20, 3)
	res, err := Calibrate(trace.Epochs, trace.World, model.DefaultParams(), quickConfig())
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	m := res.Params.Sensor
	// The learned model must have a sensible shape: read rate near the
	// antenna is high and decays with distance and with angle.
	if p := m.ReadProb(0.3, 0); p < 0.7 {
		t.Errorf("near read prob = %v, want high", p)
	}
	if m.ReadProb(3.4, 0) > m.ReadProb(1.0, 0) {
		t.Error("read prob should decay with distance")
	}
	if m.ReadProb(1.5, 1.2) > m.ReadProb(1.5, 0.1) {
		t.Error("read prob should decay with angle")
	}
	if res.NumExamples == 0 || res.Iterations != 2 || res.NumShelfTags != 20 {
		t.Errorf("result metadata wrong: %+v", res)
	}
	// The cone used for generation reads essentially nothing beyond ~3 ft, so
	// the learned 50% range should be in a plausible band.
	r := m.EffectiveRange(0.5)
	if r < 1.0 || r > 3.6 {
		t.Errorf("learned 50%% range = %v ft, want within [1.0, 3.6]", r)
	}
}

func TestCalibrateWithKnownTagsBeatsNoKnownTags(t *testing.T) {
	// Starting from a deliberately poor initial model, calibration with many
	// known tags should match the true cone much better than calibration with
	// none (which the paper attributes to EM local maxima).
	badInit := model.DefaultParams()
	badInit.Sensor = sensor.Model{A0: 1.0, A1: -0.2, A2: 0, B1: 0, B2: -0.3, MaxRange: 4.0}

	cone := sensor.DefaultConeProfile()
	trueGrid := sensor.SampleProfileGrid(cone, 0, 5, -2.5, 2.5, 24, 24)

	gridDiff := func(knownTags int) float64 {
		trace := trainingTrace(t, knownTags, 5)
		res, err := Calibrate(trace.Epochs, trace.World, badInit, quickConfig())
		if err != nil {
			t.Fatalf("Calibrate(%d known): %v", knownTags, err)
		}
		g := sensor.SampleProfileGrid(sensor.ModelProfile{Model: res.Params.Sensor}, 0, 5, -2.5, 2.5, 24, 24)
		return g.MeanAbsDifference(trueGrid)
	}

	with := gridDiff(20)
	without := gridDiff(0)
	if with >= without {
		t.Errorf("calibration with 20 known tags (diff %v) should beat 0 known tags (diff %v)", with, without)
	}
}

func TestCalibrateLearnsMotionAndSensing(t *testing.T) {
	cfg := sim.DefaultWarehouseConfig()
	cfg.NumObjects = 12
	cfg.NumShelfTags = 6
	cfg.Seed = 9
	cfg.Sensing = model.LocationSensingModel{Noise: geom.Vec3{X: 0.05, Y: 0.05}}
	trace, err := sim.GenerateWarehouse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	learnCfg := quickConfig()
	res, err := Calibrate(trace.Epochs, trace.World, model.DefaultParams(), learnCfg)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	// The robot advances 0.1 ft per epoch along y (direction may alternate
	// between rounds, but with one round the mean velocity is +0.1).
	if math.Abs(res.Params.Motion.Velocity.Y-0.1) > 0.05 {
		t.Errorf("learned velocity = %v, want ~0.1 along y", res.Params.Motion.Velocity)
	}
	// The learned sensing noise respects the configured floor.
	if res.Params.Sensing.Noise.X < learnCfg.MinSensingNoise-1e-9 {
		t.Errorf("learned sensing noise %v below the floor", res.Params.Sensing.Noise)
	}
}

func TestCalibrateErrorCases(t *testing.T) {
	trace := trainingTrace(t, 4, 11)
	if _, err := Calibrate(nil, trace.World, model.DefaultParams(), quickConfig()); err == nil {
		t.Error("expected error for empty epochs")
	}
	if _, err := Calibrate(trace.Epochs, nil, model.DefaultParams(), quickConfig()); err == nil {
		t.Error("expected error for nil world")
	}
}

func TestCalibrateLogLikelihoodReported(t *testing.T) {
	trace := trainingTrace(t, 10, 13)
	res, err := Calibrate(trace.Epochs, trace.World, model.DefaultParams(), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LogLikelihood) != res.Iterations {
		t.Fatalf("log likelihood per iteration missing: %v", res.LogLikelihood)
	}
	for _, ll := range res.LogLikelihood {
		if ll > 0 || math.IsNaN(ll) {
			t.Errorf("invalid log likelihood %v", ll)
		}
	}
}

func TestFitModelToProfileMatchesCone(t *testing.T) {
	cone := sensor.DefaultConeProfile()
	m, err := FitModelToProfile(cone, 4, stats.DefaultLogisticFitOptions())
	if err != nil {
		t.Fatalf("FitModelToProfile: %v", err)
	}
	// The fitted parametric model cannot reproduce the hard cone edges but
	// must capture the gross shape: high on axis nearby, low far away and far
	// off axis.
	if p := m.ReadProb(1, 0); p < 0.6 {
		t.Errorf("fit read prob at (1, 0) = %v", p)
	}
	if p := m.ReadProb(3.9, 0); p > 0.45 {
		t.Errorf("fit read prob at (3.9, 0) = %v", p)
	}
	if p := m.ReadProb(1, 1.5); p > 0.4 {
		t.Errorf("fit read prob at (1, 86deg) = %v", p)
	}
	grid := sensor.SampleProfileGrid(sensor.ModelProfile{Model: m}, 0, 5, -2.5, 2.5, 24, 24)
	trueGrid := sensor.SampleProfileGrid(cone, 0, 5, -2.5, 2.5, 24, 24)
	if d := grid.MeanAbsDifference(trueGrid); d > 0.25 {
		t.Errorf("grid difference of direct fit = %v, want < 0.25", d)
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	var cfg Config
	cfg.applyDefaults()
	if cfg.Iterations <= 0 || cfg.ObjectParticles <= 0 || cfg.ReaderParticles <= 0 {
		t.Error("defaults not applied")
	}
	if cfg.EStepSensingNoiseFloor <= 0 || cfg.MinSensingNoise <= 0 || cfg.MinMotionNoise <= 0 {
		t.Error("noise floors not defaulted")
	}
}
