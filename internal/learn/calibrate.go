// Package learn implements the self-calibration step of Section III-C: the
// model parameters — the sensor-model coefficients, the average reader
// velocity and motion noise, and the bias and noise of reader location
// sensing — are estimated from a small training trace collected in the target
// environment, which includes a handful of shelf tags with known locations.
//
// Estimation uses Monte-Carlo Expectation-Maximization: the E-step runs the
// factored particle filter under the current parameters to obtain estimates
// of the hidden variables (the true reader trajectory and the unknown tag
// locations); the M-step refits the logistic-regression sensor model on the
// (distance, angle, read/not-read) examples induced by those estimates and
// re-estimates the Gaussian motion and location-sensing parameters.
package learn

import (
	"fmt"
	"math"

	"repro/internal/factored"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/sensor"
	"repro/internal/stats"
	"repro/internal/stream"
)

// Config configures calibration.
type Config struct {
	// Iterations is the number of EM iterations (default 3).
	Iterations int
	// ObjectParticles is the number of particles per object used in the
	// E-step filter (default 200; the E-step does not need the full
	// inference-quality particle counts).
	ObjectParticles int
	// ReaderParticles is the number of reader particles in the E-step filter
	// (default 50).
	ReaderParticles int
	// NegativeWindow is the distance (feet) from the estimated reader
	// location within which a tag's non-observation is included as a
	// negative training example; zero derives it from the sensor range.
	NegativeWindow float64
	// FitOptions tune the logistic regression fit.
	FitOptions stats.LogisticFitOptions
	// LearnMotion enables re-estimation of the reader motion model.
	LearnMotion bool
	// LearnSensing enables re-estimation of the reader location sensing
	// model (bias and noise).
	LearnSensing bool
	// EStepSensingNoiseFloor inflates the reader-location-sensing noise used
	// during the E-step so that shelf-tag evidence is able to pull the
	// estimated trajectory away from a biased or drifting reported one (e.g.
	// dead reckoning). The learned parameters themselves are not affected.
	// Default 0.15 ft.
	EStepSensingNoiseFloor float64
	// MinSensingNoise and MinMotionNoise floor the learned noise parameters
	// so inference never treats the reported locations (or the motion model)
	// as exact. Defaults 0.03 and 0.01 ft.
	MinSensingNoise float64
	MinMotionNoise  float64
	// Seed seeds the E-step filter.
	Seed int64
}

// DefaultConfig returns the calibration configuration used in the
// experiments.
func DefaultConfig() Config {
	return Config{
		Iterations:      3,
		ObjectParticles: 200,
		ReaderParticles: 50,
		FitOptions:      stats.DefaultLogisticFitOptions(),
		LearnMotion:     true,
		LearnSensing:    true,
		Seed:            11,
	}
}

func (c *Config) applyDefaults() {
	d := DefaultConfig()
	if c.Iterations <= 0 {
		c.Iterations = d.Iterations
	}
	if c.ObjectParticles <= 0 {
		c.ObjectParticles = d.ObjectParticles
	}
	if c.ReaderParticles <= 0 {
		c.ReaderParticles = d.ReaderParticles
	}
	if c.FitOptions.MaxIter <= 0 {
		c.FitOptions = d.FitOptions
	}
	if c.EStepSensingNoiseFloor <= 0 {
		c.EStepSensingNoiseFloor = 0.15
	}
	if c.MinSensingNoise <= 0 {
		c.MinSensingNoise = 0.03
	}
	if c.MinMotionNoise <= 0 {
		c.MinMotionNoise = 0.01
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
}

// Result is the output of calibration.
type Result struct {
	// Params are the estimated model parameters.
	Params model.Params
	// Iterations is the number of EM iterations performed.
	Iterations int
	// LogLikelihood is the training log likelihood of the sensor model after
	// each iteration; it should be non-decreasing in well-behaved runs.
	LogLikelihood []float64
	// NumExamples is the number of (distance, angle, outcome) examples used
	// in the final M-step.
	NumExamples int
	// NumShelfTags is the number of tags with known locations available.
	NumShelfTags int
}

// Calibrate estimates the model parameters from a training trace. The epochs
// are the synchronized raw streams; the world carries the shelf tags whose
// locations are known. init provides the starting parameters (typically
// model.DefaultParams with a generic sensor model).
func Calibrate(epochs []*stream.Epoch, world *model.World, init model.Params, cfg Config) (Result, error) {
	cfg.applyDefaults()
	if len(epochs) == 0 {
		return Result{}, fmt.Errorf("learn: no training epochs")
	}
	if world == nil {
		return Result{}, fmt.Errorf("learn: nil world")
	}

	params := init
	if params.Sensor.MaxRange <= 0 {
		params.Sensor.MaxRange = sensor.DefaultModel().MaxRange
	}
	negWindow := cfg.NegativeWindow
	if negWindow <= 0 {
		negWindow = params.Sensor.MaxRange * 1.2
	}

	res := Result{NumShelfTags: len(world.ShelfTags)}
	for iter := 0; iter < cfg.Iterations; iter++ {
		est := runEStep(epochs, world, params, cfg, int64(iter))

		examples := buildExamples(epochs, world, est, negWindow, params.Sensor.MaxRange)
		if len(examples) == 0 {
			return res, fmt.Errorf("learn: no training examples generated (iteration %d)", iter)
		}

		beta, err := stats.FitLogistic(examples, params.Sensor.Coefficients(), cfg.FitOptions)
		if err != nil {
			return res, fmt.Errorf("learn: sensor model fit failed: %w", err)
		}
		newSensor, err := sensor.ModelFromCoefficients(beta, params.Sensor.MaxRange)
		if err != nil {
			return res, err
		}
		params.Sensor = newSensor
		res.LogLikelihood = append(res.LogLikelihood, stats.LogisticLogLikelihood(examples, beta))
		res.NumExamples = len(examples)

		if cfg.LearnMotion {
			params.Motion = estimateMotion(est.readerPoses, params.Motion, cfg.MinMotionNoise)
		}
		if cfg.LearnSensing {
			params.Sensing = estimateSensing(epochs, est.readerPoses, params.Sensing, cfg.MinSensingNoise)
		}
		res.Iterations = iter + 1
	}
	res.Params = params
	return res, nil
}

// eStepResult carries the hidden-variable estimates produced by one E-step.
type eStepResult struct {
	// readerPoses[i] is the estimated true reader pose for epochs[i].
	readerPoses []geom.Pose
	// objectLocs maps object tags to their estimated locations at the end of
	// the training trace.
	objectLocs map[stream.TagID]geom.Vec3
}

// runEStep runs the factored particle filter under the current parameters to
// estimate the reader trajectory and the unknown tag locations. The sensing
// noise is floored so that shelf-tag evidence can correct a biased reported
// trajectory even on the first iteration, before the bias has been learned.
func runEStep(epochs []*stream.Epoch, world *model.World, params model.Params, cfg Config, iterSeed int64) eStepResult {
	params.Sensing.Noise = floorNoise(params.Sensing.Noise, cfg.EStepSensingNoiseFloor)
	f := factored.New(factored.Config{
		NumReaderParticles: cfg.ReaderParticles,
		NumObjectParticles: cfg.ObjectParticles,
		Params:             params,
		World:              world,
		UseMotionModel:     true,
		Seed:               cfg.Seed + iterSeed*101,
	})
	est := eStepResult{
		readerPoses: make([]geom.Pose, len(epochs)),
		objectLocs:  make(map[stream.TagID]geom.Vec3),
	}
	for i, ep := range epochs {
		f.Step(ep, nil)
		est.readerPoses[i] = f.ReaderEstimate()
	}
	for _, id := range f.TrackedObjects() {
		if loc, _, ok := f.Estimate(id); ok {
			est.objectLocs[id] = loc
		}
	}
	return est
}

// buildExamples converts the E-step estimates into weighted logistic
// regression examples. Shelf tags (known locations) contribute full-weight
// examples; object tags (estimated locations) contribute half-weight
// examples, since their locations are themselves uncertain.
func buildExamples(epochs []*stream.Epoch, world *model.World, est eStepResult, negWindow, maxRange float64) []stats.LogisticSample {
	shelfIDs := world.ShelfTagIDs()
	var examples []stats.LogisticSample

	// Anchor examples. Training traces only exercise the distances and angles
	// that actually occur between the reader path and the shelves, so the
	// quadratic logistic model is unconstrained elsewhere and can extrapolate
	// to absurd shapes. Two sets of weak anchors pin it down: a tag touching
	// the antenna on axis is read with near certainty, and a tag at the
	// model's own maximum range (where the read probability is clamped to
	// zero anyway) is essentially never read.
	for _, d := range []float64{0, 0.2, 0.4} {
		for _, theta := range []float64{0, 0.3} {
			examples = append(examples, stats.LogisticSample{
				X:      sensor.Features(d, theta),
				Y:      true,
				Weight: 2,
			})
		}
	}
	if maxRange > 0 {
		for _, d := range []float64{maxRange, 1.15 * maxRange} {
			for _, theta := range []float64{0, 0.5} {
				examples = append(examples, stats.LogisticSample{
					X:      sensor.Features(d, theta),
					Y:      false,
					Weight: 2,
				})
			}
		}
	}

	addExample := func(pose geom.Pose, loc geom.Vec3, observed bool, weight float64) {
		d, theta := pose.DistanceAngleTo(loc)
		if !observed && d > negWindow {
			// Distant non-observations carry almost no information and would
			// otherwise swamp the fit.
			return
		}
		examples = append(examples, stats.LogisticSample{
			X:      sensor.Features(d, theta),
			Y:      observed,
			Weight: weight,
		})
	}

	for i, ep := range epochs {
		pose := est.readerPoses[i]
		for _, sid := range shelfIDs {
			addExample(pose, world.ShelfTags[sid], ep.Contains(sid), 1.0)
		}
		for id, loc := range est.objectLocs {
			addExample(pose, loc, ep.Contains(id), 0.5)
		}
	}
	return examples
}

// estimateMotion re-estimates the average reader velocity and the motion
// noise from the estimated reader trajectory.
func estimateMotion(poses []geom.Pose, prev model.MotionModel, minNoise float64) model.MotionModel {
	if len(poses) < 3 {
		return prev
	}
	diffs := make([]geom.Vec3, 0, len(poses)-1)
	for i := 1; i < len(poses); i++ {
		diffs = append(diffs, poses[i].Pos.Sub(poses[i-1].Pos))
	}
	mean := stats.WeightedMeanVec(diffs, nil)
	var sx, sy, sz float64
	for _, d := range diffs {
		sx += (d.X - mean.X) * (d.X - mean.X)
		sy += (d.Y - mean.Y) * (d.Y - mean.Y)
		sz += (d.Z - mean.Z) * (d.Z - mean.Z)
	}
	n := float64(len(diffs))
	noise := geom.Vec3{X: math.Sqrt(sx / n), Y: math.Sqrt(sy / n), Z: math.Sqrt(sz / n)}
	return model.MotionModel{
		Velocity:    mean,
		Noise:       floorNoise(noise, minNoise),
		PhiNoise:    prev.PhiNoise,
		PhiVelocity: prev.PhiVelocity,
	}
}

// estimateSensing re-estimates the systematic bias and noise of reader
// location sensing by comparing the reported locations against the estimated
// true trajectory.
func estimateSensing(epochs []*stream.Epoch, poses []geom.Pose, prev model.LocationSensingModel, minNoise float64) model.LocationSensingModel {
	var residuals []geom.Vec3
	for i, ep := range epochs {
		if !ep.HasPose || i >= len(poses) {
			continue
		}
		residuals = append(residuals, ep.ReportedPose.Pos.Sub(poses[i].Pos))
	}
	if len(residuals) < 3 {
		return prev
	}
	mean := stats.WeightedMeanVec(residuals, nil)
	var sx, sy, sz float64
	for _, r := range residuals {
		sx += (r.X - mean.X) * (r.X - mean.X)
		sy += (r.Y - mean.Y) * (r.Y - mean.Y)
		sz += (r.Z - mean.Z) * (r.Z - mean.Z)
	}
	n := float64(len(residuals))
	return model.LocationSensingModel{
		Bias:  mean,
		Noise: floorNoise(geom.Vec3{X: math.Sqrt(sx / n), Y: math.Sqrt(sy / n), Z: math.Sqrt(sz / n)}, minNoise),
	}
}

// floorNoise keeps each noise component above a small floor so the Gaussians
// stay non-degenerate.
func floorNoise(v geom.Vec3, floor float64) geom.Vec3 {
	if v.X < floor {
		v.X = floor
	}
	if v.Y < floor {
		v.Y = floor
	}
	if v.Z < floor {
		v.Z = floor
	}
	return v
}

// FitModelToProfile fits the parametric logistic sensor model directly to a
// ground-truth detection profile by sampling it on a dense grid of distances
// and angles. It is used to obtain the best parametric approximation of a
// known profile (e.g. the simulator's cone) for "true sensor model" runs and
// for goodness-of-fit checks of learned models.
func FitModelToProfile(p sensor.Profile, maxRange float64, opts stats.LogisticFitOptions) (sensor.Model, error) {
	if maxRange <= 0 {
		maxRange = p.MaxRange()
	}
	var examples []stats.LogisticSample
	origin := geom.Pose{}
	for di := 0; di <= 40; di++ {
		d := maxRange * float64(di) / 40
		for ai := 0; ai <= 36; ai++ {
			theta := math.Pi * float64(ai) / 36
			loc := geom.Vec3{X: d * math.Cos(theta), Y: d * math.Sin(theta)}
			pr := p.DetectProb(origin, loc)
			features := sensor.Features(d, theta)
			// Encode the probability with a pair of weighted examples.
			if pr > 0 {
				examples = append(examples, stats.LogisticSample{X: features, Y: true, Weight: pr})
			}
			if pr < 1 {
				examples = append(examples, stats.LogisticSample{X: features, Y: false, Weight: 1 - pr})
			}
		}
	}
	beta, err := stats.FitLogistic(examples, nil, opts)
	if err != nil {
		return sensor.Model{}, err
	}
	return sensor.ModelFromCoefficients(beta, maxRange)
}
