package smurf

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/stream"
)

// Uniform is the worst-case baseline of Section V-B: whenever an object is
// read, its location is re-sampled uniformly over the overlapping area of the
// sensor's read range (in front of the antenna, centered at the reported
// reader location) and the shelf. The most recent sample is reported. There
// is no smoothing and no inference, so the reported location is only as good
// as a single uniform draw over the sensing region — the paper uses it as a
// bound on worst-case inference error.
type Uniform struct {
	cfg   Config
	world *model.World
	src   *rng.Source

	latest map[stream.TagID]geom.Vec3
	order  []stream.TagID
	now    int
}

// NewUniform returns the uniform sampling baseline.
func NewUniform(cfg Config, world *model.World) *Uniform {
	cfg.applyDefaults()
	return &Uniform{
		cfg:    cfg,
		world:  world,
		src:    rng.New(cfg.Seed + 7919),
		latest: make(map[stream.TagID]geom.Vec3),
	}
}

// ProcessEpoch consumes one epoch. The uniform baseline emits nothing until
// Finish.
func (u *Uniform) ProcessEpoch(ep *stream.Epoch) {
	u.now = ep.Time
	if !ep.HasPose {
		return
	}
	for _, id := range ep.ObservedList() {
		if u.world != nil && u.world.IsShelfTag(id) {
			continue
		}
		if _, ok := u.latest[id]; !ok {
			u.order = append(u.order, id)
		}
		u.latest[id] = u.sampleLocation(ep.ReportedPose)
	}
}

func (u *Uniform) sampleLocation(readerPose geom.Pose) geom.Vec3 {
	return sampleRangeShelfIntersection(u.world, readerPose, u.cfg.ReadRange, u.src)
}

// Finish returns one averaged location event per object seen.
func (u *Uniform) Finish() []stream.Event {
	ids := make([]stream.TagID, len(u.order))
	copy(ids, u.order)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var events []stream.Event
	for _, id := range ids {
		loc, ok := u.latest[id]
		if !ok {
			continue
		}
		events = append(events, stream.Event{Time: u.now, Tag: id, Loc: loc})
	}
	return events
}

// Run processes a full epoch sequence and returns the final events.
func (u *Uniform) Run(epochs []*stream.Epoch) []stream.Event {
	for _, ep := range epochs {
		u.ProcessEpoch(ep)
	}
	return u.Finish()
}
