// Package smurf implements the comparison baselines of Section V: SMURF, the
// adaptive RFID smoothing technique of Jeffery et al. (VLDB Journal 2007)
// used by the HiFi project, augmented with the location sampling described in
// Section V-C so that it can produce location events; and the uniform
// sampling baseline used as a bound on worst-case inference error.
//
// SMURF itself decides, per epoch and per tag, whether the tag is still
// within the reader's range by smoothing its readings over an adaptive
// window. It cannot translate readings into locations, so the paper augments
// it: in each epoch where SMURF believes the tag is in range, a location is
// sampled uniformly over the intersection of the read range (centered at the
// reported reader location) and the shelf; when SMURF decides the tag has
// left scope, the sampled locations of that visit are averaged into one
// location estimate.
package smurf

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/stream"
)

// Config configures the augmented SMURF estimator.
type Config struct {
	// ReadRange is the radius in feet of the assumed read range used for
	// location sampling. SMURF cannot learn a sensor model from data, so this
	// is "offered" from our learned model, exactly as the paper does for the
	// comparison.
	ReadRange float64
	// WindowMin and WindowMax bound the adaptive smoothing window, in epochs.
	WindowMin int
	WindowMax int
	// Delta is the completeness confidence parameter of SMURF's window
	// sizing rule (default 0.05).
	Delta float64
	// SamplesPerEpoch is the number of location samples drawn per in-range
	// epoch (default 8).
	SamplesPerEpoch int
	// Seed seeds the sampler.
	Seed int64
}

// DefaultConfig returns the configuration used in the evaluation.
func DefaultConfig() Config {
	return Config{ReadRange: 3.0, WindowMin: 2, WindowMax: 25, Delta: 0.05, SamplesPerEpoch: 8, Seed: 1}
}

func (c *Config) applyDefaults() {
	d := DefaultConfig()
	if c.ReadRange <= 0 {
		c.ReadRange = d.ReadRange
	}
	if c.WindowMin <= 0 {
		c.WindowMin = d.WindowMin
	}
	if c.WindowMax <= 0 {
		c.WindowMax = d.WindowMax
	}
	if c.Delta <= 0 {
		c.Delta = d.Delta
	}
	if c.SamplesPerEpoch <= 0 {
		c.SamplesPerEpoch = d.SamplesPerEpoch
	}
}

// tagState is the per-tag adaptive smoothing state.
type tagState struct {
	window     int   // current window size w_i in epochs
	readEpochs []int // epochs with readings inside the current window
	inRange    bool
	// visit accumulators for the augmented location sampling.
	sampleSum   geom.Vec3
	sampleCount int
	lastRead    int
}

// Estimator is the augmented SMURF baseline.
type Estimator struct {
	cfg   Config
	world *model.World
	src   *rng.Source
	tags  map[stream.TagID]*tagState
	order []stream.TagID
	now   int
}

// New returns an augmented SMURF estimator over the given world (whose shelf
// regions restrict location sampling).
func New(cfg Config, world *model.World) *Estimator {
	cfg.applyDefaults()
	return &Estimator{
		cfg:   cfg,
		world: world,
		src:   rng.New(cfg.Seed),
		tags:  make(map[stream.TagID]*tagState),
	}
}

// ProcessEpoch consumes one epoch and returns the location events emitted at
// this epoch (events appear when SMURF decides a tag has left the reader's
// range).
func (e *Estimator) ProcessEpoch(ep *stream.Epoch) []stream.Event {
	e.now = ep.Time
	var events []stream.Event

	// Feed readings.
	for _, id := range ep.ObservedList() {
		if e.world != nil && e.world.IsShelfTag(id) {
			continue
		}
		st, ok := e.tags[id]
		if !ok {
			st = &tagState{window: e.cfg.WindowMin}
			e.tags[id] = st
			e.order = append(e.order, id)
		}
		st.readEpochs = append(st.readEpochs, ep.Time)
		st.lastRead = ep.Time
	}

	// Update every known tag's window and presence decision; sample locations
	// for tags currently believed to be in range.
	for _, id := range e.order {
		st := e.tags[id]
		e.updateWindow(st, ep.Time)
		present := e.present(st, ep.Time)
		switch {
		case present:
			if ep.HasPose {
				for s := 0; s < e.cfg.SamplesPerEpoch; s++ {
					st.sampleSum = st.sampleSum.Add(e.sampleLocation(ep.ReportedPose))
					st.sampleCount++
				}
			}
			st.inRange = true
		case st.inRange:
			// The tag just left scope: emit the averaged location estimate.
			if ev, ok := e.flushVisit(id, st, ep.Time); ok {
				events = append(events, ev)
			}
		}
	}
	stream.ByTimeThenTag(events)
	return events
}

// updateWindow adapts the smoothing window using SMURF's statistical rules:
// grow the window toward the size required for completeness given the
// estimated per-epoch read rate, and shrink it when the readings within the
// window are so few that a transition (the tag moving out of range) is more
// likely than random loss.
func (e *Estimator) updateWindow(st *tagState, now int) {
	// Evict readings that fell out of the maximal window.
	cutoff := now - e.cfg.WindowMax
	i := 0
	for i < len(st.readEpochs) && st.readEpochs[i] <= cutoff {
		i++
	}
	st.readEpochs = st.readEpochs[i:]

	if len(st.readEpochs) == 0 {
		st.window = e.cfg.WindowMin
		return
	}

	// Estimated per-epoch read rate over the current window.
	inWindow := e.countInWindow(st, now)
	pHat := float64(inWindow) / float64(st.window)
	if pHat <= 0 {
		pHat = 1.0 / float64(st.window+1)
	}
	if pHat > 1 {
		pHat = 1
	}

	// Completeness requirement: w* = ceil( 2 ln(1/delta) / pHat ), the
	// binomial-sampling bound SMURF uses to ensure a present tag is read at
	// least once per window with probability 1-delta.
	need := int(math.Ceil(2 * math.Log(1/e.cfg.Delta) / (pHat * 2)))
	if need < e.cfg.WindowMin {
		need = e.cfg.WindowMin
	}
	if need > e.cfg.WindowMax {
		need = e.cfg.WindowMax
	}

	// Transition detection: if the number of observed readings in the window
	// falls more than two standard deviations below its binomial expectation,
	// the tag has likely moved out of range, so the window shrinks to react
	// quickly.
	expected := pHat * float64(st.window)
	sd := math.Sqrt(float64(st.window) * pHat * (1 - pHat))
	recent := e.countSince(st, now-st.window/2)
	if float64(recent) < expected/2-sd && st.window > e.cfg.WindowMin {
		st.window = maxInt(e.cfg.WindowMin, st.window/2)
		return
	}

	// Additive increase toward the completeness requirement.
	if need > st.window {
		st.window++
	} else if need < st.window {
		st.window--
	}
}

func (e *Estimator) countInWindow(st *tagState, now int) int {
	return e.countSince(st, now-st.window)
}

func (e *Estimator) countSince(st *tagState, since int) int {
	n := 0
	for i := len(st.readEpochs) - 1; i >= 0; i-- {
		if st.readEpochs[i] > since {
			n++
		} else {
			break
		}
	}
	return n
}

// present reports SMURF's smoothed presence decision: the tag is considered
// in range if it was read at least once within the current window.
func (e *Estimator) present(st *tagState, now int) bool {
	return e.countInWindow(st, now) > 0
}

// sampleLocation draws one location uniformly over the intersection of the
// read range (the area in front of the antenna within ReadRange of the
// reported reader location) and the shelf regions.
func (e *Estimator) sampleLocation(readerPose geom.Pose) geom.Vec3 {
	return sampleRangeShelfIntersection(e.world, readerPose, e.cfg.ReadRange, e.src)
}

// sampleRangeShelfIntersection draws a point uniformly over the overlap of
// the read range (the half-disc in front of the antenna) and the shelf
// regions, using rejection sampling over the intersection of their bounding
// boxes and a clamped fallback when the overlap is (numerically) empty.
func sampleRangeShelfIntersection(world *model.World, readerPose geom.Pose, r float64, src *rng.Source) geom.Vec3 {
	readerPos := readerPose.Pos
	heading := readerPose.Heading()
	rangeBox := geom.BBoxAround(readerPos, r)
	sampleBox := rangeBox
	hasShelves := world != nil && len(world.Shelves) > 0
	if hasShelves {
		shelfBox := world.ShelfBBox()
		if shelfBox.Intersects(rangeBox) {
			sampleBox = geom.NewBBox(
				geom.Vec3{
					X: maxFloat(rangeBox.Min.X, shelfBox.Min.X),
					Y: maxFloat(rangeBox.Min.Y, shelfBox.Min.Y),
					Z: maxFloat(rangeBox.Min.Z, shelfBox.Min.Z),
				},
				geom.Vec3{
					X: minFloat(rangeBox.Max.X, shelfBox.Max.X),
					Y: minFloat(rangeBox.Max.Y, shelfBox.Max.Y),
					Z: minFloat(rangeBox.Max.Z, shelfBox.Max.Z),
				},
			)
		}
	}
	for attempt := 0; attempt < 128; attempt++ {
		candidate := src.UniformInBox(sampleBox)
		if candidate.DistXY(readerPos) > r {
			continue
		}
		// The read range is directional: only points in front of the antenna
		// can be read.
		if candidate.Sub(readerPos).Dot(heading) < 0 {
			continue
		}
		if hasShelves && !onAnyShelf(world, candidate) {
			continue
		}
		return candidate
	}
	if hasShelves {
		return world.ClampToShelves(readerPos)
	}
	return readerPos
}

func onAnyShelf(world *model.World, p geom.Vec3) bool {
	for _, s := range world.Shelves {
		if s.Contains(p) {
			return true
		}
	}
	return false
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// flushVisit emits the averaged location estimate for a visit and resets the
// accumulators.
func (e *Estimator) flushVisit(id stream.TagID, st *tagState, now int) (stream.Event, bool) {
	st.inRange = false
	if st.sampleCount == 0 {
		return stream.Event{}, false
	}
	loc := st.sampleSum.Scale(1 / float64(st.sampleCount))
	st.sampleSum = geom.Vec3{}
	st.sampleCount = 0
	return stream.Event{Time: now, Tag: id, Loc: loc}, true
}

// Finish flushes all tags that are still considered in range and returns
// their events.
func (e *Estimator) Finish() []stream.Event {
	var events []stream.Event
	ids := make([]stream.TagID, len(e.order))
	copy(ids, e.order)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		st := e.tags[id]
		if st.sampleCount > 0 {
			if ev, ok := e.flushVisit(id, st, e.now); ok {
				events = append(events, ev)
			}
		}
	}
	return events
}

// Run processes a full epoch sequence and returns all events including the
// final flush.
func (e *Estimator) Run(epochs []*stream.Epoch) []stream.Event {
	var all []stream.Event
	for _, ep := range epochs {
		all = append(all, e.ProcessEpoch(ep)...)
	}
	all = append(all, e.Finish()...)
	return all
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
