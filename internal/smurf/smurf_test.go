package smurf

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stream"
)

func testWorld() *model.World {
	w := model.NewWorld()
	w.AddShelf(model.Shelf{
		ID:     "shelf",
		Region: geom.NewBBox(geom.V(1, 0, 0), geom.V(1.66, 12, 0)),
	})
	w.AddShelfTag("ref", geom.V(1, 6, 0))
	return w
}

// noisyScan builds epochs for a reader sweeping along y at x=0 facing +x,
// reading a tag at loc with probability p while within rangeFt.
func noisyScan(loc geom.Vec3, id stream.TagID, p float64, rangeFt float64, n int, seed int64) []*stream.Epoch {
	// Simple deterministic pseudo-noise so the test is reproducible without
	// importing the rng package: a read is dropped whenever (t*seed)%10 >= p*10.
	var epochs []*stream.Epoch
	for t := 0; t < n; t++ {
		ep := stream.NewEpoch(t)
		pose := geom.Pose{Pos: geom.V(0, float64(t)*0.1, 0), Phi: 0}
		ep.HasPose = true
		ep.ReportedPose = pose
		if pose.Pos.DistXY(loc) <= rangeFt {
			if int((int64(t)+1)*seed)%10 < int(p*10) {
				ep.Observed[id] = true
			}
		}
		epochs = append(epochs, ep)
	}
	return epochs
}

func TestSMURFEmitsEventNearTag(t *testing.T) {
	w := testWorld()
	est := New(Config{ReadRange: 2.5, Seed: 3}, w)
	trueLoc := geom.V(1, 6, 0)
	events := est.Run(noisyScan(trueLoc, "obj", 0.7, 2.0, 120, 7))
	if len(events) == 0 {
		t.Fatal("SMURF emitted no events")
	}
	last := events[len(events)-1]
	if last.Tag != "obj" {
		t.Fatalf("unexpected tag %s", last.Tag)
	}
	// The estimate must lie on the shelf and within a couple of feet of the
	// truth along y (SMURF smooths over the in-range window).
	if last.Loc.X < 1 || last.Loc.X > 1.66 {
		t.Errorf("estimate x = %v, want within the shelf depth", last.Loc.X)
	}
	if d := last.Loc.DistXY(trueLoc); d > 2.5 {
		t.Errorf("estimate %v is %v ft from the truth", last.Loc, d)
	}
}

func TestSMURFSmoothsDropouts(t *testing.T) {
	w := testWorld()
	est := New(Config{ReadRange: 2.5, Seed: 3}, w)
	// A tag read with only 50% probability: SMURF should not flip-flop; it
	// should emit a small number of visit events rather than one per dropout.
	events := est.Run(noisyScan(geom.V(1, 6, 0), "obj", 0.5, 2.0, 120, 13))
	if len(events) == 0 {
		t.Fatal("no events")
	}
	if len(events) > 6 {
		t.Errorf("SMURF emitted %d events; smoothing should consolidate dropouts", len(events))
	}
}

func TestSMURFIgnoresShelfTags(t *testing.T) {
	w := testWorld()
	est := New(Config{ReadRange: 2.5, Seed: 1}, w)
	ep := stream.NewEpoch(0)
	ep.HasPose = true
	ep.ReportedPose = geom.P(0, 6, 0, 0)
	ep.Observed["ref"] = true // shelf tag only
	est.ProcessEpoch(ep)
	if events := est.Finish(); len(events) != 0 {
		t.Errorf("shelf tag produced events: %v", events)
	}
}

func TestSMURFSamplesInFrontOfAntenna(t *testing.T) {
	// Shelves on both sides of the aisle; samples must land on the side the
	// antenna faces.
	w := model.NewWorld()
	w.AddShelf(model.Shelf{ID: "front", Region: geom.NewBBox(geom.V(1, 0, 0), geom.V(1.66, 12, 0))})
	w.AddShelf(model.Shelf{ID: "back", Region: geom.NewBBox(geom.V(-1.66, 0, 0), geom.V(-1, 12, 0))})
	est := New(Config{ReadRange: 3, Seed: 5}, w)
	var epochs []*stream.Epoch
	for t := 0; t < 40; t++ {
		ep := stream.NewEpoch(t)
		ep.HasPose = true
		ep.ReportedPose = geom.P(0, 3+float64(t)*0.1, 0, 0) // facing +x
		ep.Observed["obj"] = true
		epochs = append(epochs, ep)
	}
	events := est.Run(epochs)
	if len(events) == 0 {
		t.Fatal("no events")
	}
	for _, ev := range events {
		if ev.Loc.X < 0 {
			t.Errorf("sampled location %v is behind the antenna", ev.Loc)
		}
	}
}

func TestUniformBaselineStaysOnShelfWithinRange(t *testing.T) {
	w := testWorld()
	u := NewUniform(Config{ReadRange: 2.5, Seed: 9}, w)
	epochs := noisyScan(geom.V(1, 6, 0), "obj", 1.0, 2.0, 120, 3)
	events := u.Run(epochs)
	if len(events) != 1 {
		t.Fatalf("uniform baseline should emit exactly one event per object, got %d", len(events))
	}
	ev := events[0]
	if ev.Loc.X < 1 || ev.Loc.X > 1.66 {
		t.Errorf("uniform sample x = %v outside the shelf", ev.Loc.X)
	}
	if ev.Loc.Y < 0 || ev.Loc.Y > 12 {
		t.Errorf("uniform sample y = %v outside the shelf", ev.Loc.Y)
	}
}

func TestUniformIsWorseThanSMURFOnLabTrace(t *testing.T) {
	// On the emulated lab deployment the expected ordering of the baselines
	// holds: SMURF (which smooths and averages) beats single-sample uniform.
	trace, err := sim.GenerateLab(sim.LabConfig{Seed: 31})
	if err != nil {
		t.Fatalf("GenerateLab: %v", err)
	}
	cfg := Config{ReadRange: 2.5, Seed: 4}
	smurfRep := scoreEvents(t, New(cfg, trace.World).Run(trace.Epochs), trace)
	uniRep := scoreEvents(t, NewUniform(cfg, trace.World).Run(trace.Epochs), trace)
	if smurfRep.Count == 0 || uniRep.Count == 0 {
		t.Fatal("baselines scored no objects")
	}
	if smurfRep.MeanXY >= uniRep.MeanXY {
		t.Errorf("SMURF (%.2f) should beat uniform (%.2f) on the lab trace", smurfRep.MeanXY, uniRep.MeanXY)
	}
	// SMURF's X error is roughly half the shelf depth (0.66/2), certainly
	// below the full depth.
	if smurfRep.MeanX > 0.66 {
		t.Errorf("SMURF X error %.2f exceeds the shelf depth", smurfRep.MeanX)
	}
}

func scoreEvents(t *testing.T, events []stream.Event, trace *sim.Trace) metrics.ErrorReport {
	t.Helper()
	return metrics.ScoreEvents(events, func(id stream.TagID, tm int) (geom.Vec3, bool) {
		return trace.Truth.ObjectAt(id, tm)
	})
}

func TestConfigDefaults(t *testing.T) {
	var cfg Config
	cfg.applyDefaults()
	if cfg.ReadRange <= 0 || cfg.WindowMax <= 0 || cfg.SamplesPerEpoch <= 0 || cfg.Delta <= 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}
