package wal

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// drainCursor reads records until the cursor stalls (io.EOF), failing the
// test on any other error.
func drainCursor(t *testing.T, c *Cursor) []Record {
	t.Helper()
	var got []Record
	for {
		rec, _, err := c.Next()
		if err == io.EOF {
			return got
		}
		if err != nil {
			t.Fatalf("cursor next: %v", err)
		}
		got = append(got, rec)
	}
}

func sealRecord(i int) Record { return Record{Type: RecSeal, UpTo: i} }

func TestCursorAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	// A tiny segment threshold forces a rotation every couple of records.
	l, err := Open(dir, Options{Sync: SyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 20; i++ {
		want = append(want, sealRecord(i))
	}
	appendAll(t, l, want)
	if l.Segment() < 2 {
		t.Fatalf("expected rotation, still in segment %d", l.Segment())
	}

	c, err := OpenCursor(dir, 0, 0) // seg 0: start at the oldest segment
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := drainCursor(t, c)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cursor read %d records across rotation, want %d:\n got %+v\nwant %+v", len(got), len(want), got, want)
	}

	// The cursor stalls at the live tail, then sees later appends.
	more := []Record{sealRecord(100), sealRecord(101)}
	appendAll(t, l, more)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	got = drainCursor(t, c)
	if !reflect.DeepEqual(got, more) {
		t.Fatalf("tail read %+v, want %+v", got, more)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCursorResumeFromPos(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 12; i++ {
		want = append(want, sealRecord(i))
	}
	appendAll(t, l, want)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	c, err := OpenCursor(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []Record
	for i := 0; i < 5; i++ {
		rec, _, err := c.Next()
		if err != nil {
			t.Fatalf("next %d: %v", i, err)
		}
		got = append(got, rec)
	}
	seg, off := c.Pos()
	c.Close()

	// A fresh cursor at the recorded position continues exactly where the
	// first stopped — the reconnect-with-resume path.
	c2, err := OpenCursor(dir, seg, off)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got = append(got, drainCursor(t, c2)...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resume mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestCursorTornTailNewestSegmentStalls(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{sealRecord(1), sealRecord(2)}
	appendAll(t, l, want)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the newest segment's tail: a partial frame, as a crash mid-append
	// (or a concurrent write in flight) would leave it.
	segs, err := Segments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	path := filepath.Join(dir, segName(segs[len(segs)-1]))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x20, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c, err := OpenCursor(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := drainCursor(t, c) // must stall with io.EOF at the tear, not error
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	// Repeated polls at the tear keep stalling (the frame might complete).
	if _, _, err := c.Next(); err != io.EOF {
		t.Fatalf("poll at torn newest tail: %v, want io.EOF", err)
	}
}

func TestCursorSkipsTornTailOfFinishedSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	first := []Record{sealRecord(1), sealRecord(2)}
	appendAll(t, l, first)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := Segments(dir)
	path := filepath.Join(dir, segName(segs[len(segs)-1]))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Restart the writer: Open never appends to the torn segment, it starts
	// a fresh one after it — the cursor must skip the tear and continue there.
	l2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	second := []Record{sealRecord(3), sealRecord(4)}
	appendAll(t, l2, second)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	c, err := OpenCursor(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := drainCursor(t, c)
	want := append(append([]Record{}, first...), second...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestCursorSegmentGone(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := l.Append(sealRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := Segments(dir)
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %v", segs)
	}
	// GC everything below the newest segment, as a checkpoint would.
	newest := segs[len(segs)-1]
	if err := l.RemoveSegmentsBefore(newest); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// A cursor positioned in a removed segment must fail with ErrSegmentGone.
	c, err := OpenCursor(dir, segs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Next(); !errors.Is(err, ErrSegmentGone) {
		t.Fatalf("cursor at GC'd segment: %v, want ErrSegmentGone", err)
	}
	c.Close()

	// So must one that finishes a segment whose successor was removed: keep
	// only the oldest and newest, opening a gap.
	// (Rebuild the scenario: fresh dir, then delete a middle segment.)
	dir2 := t.TempDir()
	l2, err := Open(dir2, Options{Sync: SyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := l2.Append(sealRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	segs2, _ := Segments(dir2)
	if len(segs2) < 3 {
		t.Fatalf("want >= 3 segments, got %v", segs2)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir2, segName(segs2[1]))); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCursor(dir2, segs2[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	var sawGone bool
	for {
		_, _, err := c2.Next()
		if errors.Is(err, ErrSegmentGone) {
			sawGone = true
			break
		}
		if err != nil {
			t.Fatalf("cursor across gap: %v, want ErrSegmentGone eventually", err)
		}
	}
	if !sawGone {
		t.Fatal("cursor crossed a GC gap without ErrSegmentGone")
	}
}

func TestCursorConcurrentAppendTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := l.Append(sealRecord(i)); err != nil {
				done <- err
				return
			}
		}
		done <- l.Sync()
	}()

	c, err := OpenCursor(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var got []Record
	deadline := time.Now().Add(10 * time.Second)
	for len(got) < n {
		rec, _, err := c.Next()
		if err == io.EOF {
			if time.Now().After(deadline) {
				t.Fatalf("timed out tailing: %d/%d records", len(got), n)
			}
			time.Sleep(time.Millisecond)
			continue
		}
		if err != nil {
			t.Fatalf("tail next: %v", err)
		}
		got = append(got, rec)
	}
	if err := <-done; err != nil {
		t.Fatalf("appender: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	for i, rec := range got {
		if rec.UpTo != i {
			t.Fatalf("record %d out of order: %+v", i, rec)
		}
	}
}

// readSegments returns the concatenated bytes of every segment in dir, keyed
// by sequence number.
func readSegments(t *testing.T, dir string) map[uint64][]byte {
	t.Helper()
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[uint64][]byte, len(segs))
	for _, s := range segs {
		data, err := os.ReadFile(filepath.Join(dir, segName(s)))
		if err != nil {
			t.Fatal(err)
		}
		out[s] = data
	}
	return out
}

// shipAll tails src with a cursor and appends every record's payload to m at
// its source position — the replication ship/apply loop in miniature.
func shipAll(t *testing.T, src string, m *Mirror) int {
	t.Helper()
	c, err := OpenCursor(src, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n := 0
	for {
		_, payload, err := c.Next()
		if err == io.EOF {
			return n
		}
		if err != nil {
			t.Fatalf("ship next: %v", err)
		}
		seg, off := c.RecordPos()
		if err := m.Append(seg, off, payload); err != nil {
			t.Fatalf("mirror append: %v", err)
		}
		n++
	}
}

func TestMirrorByteIdentical(t *testing.T) {
	src, dst := t.TempDir(), t.TempDir()
	l, err := Open(src, Options{Sync: SyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	for i := 0; i < 6; i++ {
		appendAll(t, l, recs)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	m, err := OpenMirror(dst, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	shipped := shipAll(t, src, m)
	if shipped != 6*len(recs) {
		t.Fatalf("shipped %d records, want %d", shipped, 6*len(recs))
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Close rotated nothing on the mirror side, so every source segment the
	// cursor fully read must exist byte-identically in the mirror. The
	// source's newest segment is identical too (Close appends nothing).
	got, want := readSegments(t, dst), readSegments(t, src)
	if len(got) != len(want) {
		t.Fatalf("mirror has %d segments, source %d", len(got), len(want))
	}
	for seq, data := range want {
		if !bytes.Equal(got[seq], data) {
			t.Fatalf("segment %d differs: mirror %d bytes, source %d bytes", seq, len(got[seq]), len(data))
		}
	}
}

func TestMirrorReopenTruncatesTornTail(t *testing.T) {
	src, dst := t.TempDir(), t.TempDir()
	l, err := Open(src, Options{Sync: SyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for i := 0; i < 10; i++ {
		recs = append(recs, sealRecord(i))
	}
	appendAll(t, l, recs)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	m, err := OpenMirror(dst, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	shipAll(t, src, m)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the mirror's newest segment — the follower crashed mid-append.
	segs, _ := Segments(dst)
	newest := segs[len(segs)-1]
	path := filepath.Join(dst, segName(newest))
	pre, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.Write([]byte{0xff, 0x00, 0x12})
	f.Close()

	m2, err := OpenMirror(dst, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	seg, off := m2.Pos()
	if seg != newest || off != int64(len(pre)) {
		t.Fatalf("reopened mirror at (%d, %d), want (%d, %d)", seg, off, newest, len(pre))
	}

	// Resume shipping from the mirror's position: the source's remaining
	// records land exactly after the truncation point.
	more := []Record{sealRecord(100), sealRecord(101)}
	appendAll(t, l, more)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCursor(src, seg, off)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for {
		_, payload, err := c.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("resume next: %v", err)
		}
		rseg, roff := c.RecordPos()
		if err := m2.Append(rseg, roff, payload); err != nil {
			t.Fatalf("resume mirror append: %v", err)
		}
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}

	got, want := readSegments(t, dst), readSegments(t, src)
	for seq, data := range want {
		if !bytes.Equal(got[seq], data) {
			t.Fatalf("segment %d differs after torn-tail reopen", seq)
		}
	}
}

func TestMirrorDesyncRejected(t *testing.T) {
	dst := t.TempDir()
	m, err := OpenMirror(dst, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	payload := sealRecord(1).encode()
	// First append to an empty mirror must be a segment start.
	if err := m.Append(3, 99, payload); err == nil {
		t.Fatal("mid-segment first append accepted")
	}
	if err := m.Append(3, int64(len(segMagic)), payload); err != nil {
		t.Fatal(err)
	}
	_, off := m.Pos()
	// Wrong offset, wrong segment, and skipped rotation are all desyncs.
	if err := m.Append(3, off+1, payload); err == nil {
		t.Fatal("wrong offset accepted")
	}
	if err := m.Append(2, off, payload); err == nil {
		t.Fatal("wrong segment accepted")
	}
	if err := m.Append(5, int64(len(segMagic)), payload); err == nil {
		t.Fatal("skipped rotation accepted")
	}
	// The exact position, and the next segment's start, are accepted.
	if err := m.Append(3, off, payload); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(4, int64(len(segMagic)), payload); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// The mirrored directory replays like any log.
	got, _ := replayAll(t, dst, 0)
	if len(got) != 3 {
		t.Fatalf("replayed %d records from mirror, want 3", len(got))
	}
}
