package wal

// Mirror is the write side of WAL shipping on a follower: it reconstructs the
// primary's segment files byte-for-byte from shipped record payloads. The
// primary ships each record's payload bytes with the (segment, offset) it
// occupies; the mirror re-frames them with the same deterministic codec
// (wire.AppendFrame) and writes them at the same position in a same-named
// segment file, so a promoted follower's log directory is indistinguishable
// from the primary's — recovery, replay and later followers all work on it
// unchanged.
//
// A mirror is strictly sequential: every append must land exactly at the
// mirror's write position, or at the first frame boundary of the next segment
// (which finishes the current segment durably, exactly like Log rotation).
// Anything else is a desync — the follower reconnects and resumes from the
// mirror's position, which heals duplicates and gaps alike.

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/rfid/wire"
)

// Mirror is an open follower-side log writer. Not safe for concurrent use;
// the replication apply path appends from a single goroutine.
type Mirror struct {
	dir   string
	opts  Options
	f     *os.File
	seg   uint64
	off   int64
	dirty bool
	last  time.Time
	stats Stats
	frame []byte
}

// OpenMirror opens (or creates) a mirrored log directory. If segments exist —
// a follower restarting — the newest is scanned for its valid frame length
// and truncated there, discarding any tail torn by the previous life's crash;
// the mirror's position is then the end of the last whole frame, which is
// exactly where recovery's replay stopped. An empty directory yields a mirror
// that adopts its position from the first Append.
func OpenMirror(dir string, opts Options) (*Mirror, error) {
	opts.applyDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create mirror dir: %w", err)
	}
	m := &Mirror{dir: dir, opts: opts, last: time.Now()}
	segs, err := Segments(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: scan segments: %w", err)
	}
	if len(segs) == 0 {
		return m, nil
	}
	seg := segs[len(segs)-1]
	path := filepath.Join(dir, segName(seg))
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: read mirrored segment %d: %w", seg, err)
	}
	valid, err := validFrameLength(data)
	if err != nil {
		return nil, fmt.Errorf("wal: mirrored segment %d: %w", seg, err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open mirrored segment %d: %w", seg, err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate mirrored segment %d: %w", seg, err)
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek mirrored segment %d: %w", seg, err)
	}
	if valid < int64(len(segMagic)) {
		// The previous life crashed inside segment creation: rebuild the
		// header so the file is a well-formed empty segment again.
		if _, err := f.Write([]byte(segMagic)); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: rewrite segment header: %w", err)
		}
		valid = int64(len(segMagic))
	}
	m.f, m.seg, m.off = f, seg, valid
	m.stats.Segment = seg
	return m, nil
}

// validFrameLength scans a segment image and returns the byte length of its
// whole-frame prefix (header included). A torn or short tail is simply where
// the valid prefix ends; only a wrong magic — bytes that were written whole
// but are not a segment — is an error. A file shorter than the magic (a crash
// inside segment creation) reports 0, and OpenMirror rebuilds the header.
func validFrameLength(data []byte) (int64, error) {
	if len(data) < len(segMagic) {
		return 0, nil
	}
	if string(data[:len(segMagic)]) != segMagic {
		return 0, fmt.Errorf("bad segment magic")
	}
	rest := data[len(segMagic):]
	for len(rest) > 0 {
		_, next, err := wire.NextFrame(rest)
		if err != nil {
			break
		}
		rest = next
	}
	return int64(len(data) - len(rest)), nil
}

// Pos returns the mirror's write position: the (segment, offset) the next
// shipped record must carry, and the resume cursor a follower sends in its
// hello and acks.
func (m *Mirror) Pos() (seg uint64, off int64) { return m.seg, m.off }

// Segment returns the segment currently open for appends (0 before the first
// append to an empty mirror).
func (m *Mirror) Segment() uint64 { return m.seg }

// Stats returns the cumulative counters.
func (m *Mirror) Stats() Stats { return m.stats }

// errDesync builds the append-position mismatch error.
func (m *Mirror) errDesync(seg uint64, off int64) error {
	return fmt.Errorf("wal: mirror desync: append at segment %d offset %d, mirror at segment %d offset %d", seg, off, m.seg, m.off)
}

// Append frames payload and writes it at (seg, off), which must be the
// mirror's exact write position — or the first frame boundary of segment
// seg+1, which durably finishes the current segment and starts the next (the
// shipped image of the primary's rotation). An empty mirror adopts any
// segment number from its first append, which must be a segment start.
func (m *Mirror) Append(seg uint64, off int64, payload []byte) error {
	head := int64(len(segMagic))
	switch {
	case m.f == nil && m.off == 0:
		// Empty mirror: adopt the shipper's segment, at its start only.
		if off != head {
			return m.errDesync(seg, off)
		}
		if err := m.openSegment(seg); err != nil {
			return err
		}
	case seg == m.seg && off == m.off:
		// In sequence.
	case seg == m.seg+1 && off == head && m.f != nil:
		if err := m.openSegment(seg); err != nil {
			return err
		}
	default:
		return m.errDesync(seg, off)
	}
	m.frame = wire.AppendFrame(m.frame[:0], payload)
	if _, err := m.f.Write(m.frame); err != nil {
		return fmt.Errorf("wal: mirror append: %w", err)
	}
	m.off += int64(len(m.frame))
	m.dirty = true
	m.stats.AppendedRecords++
	m.stats.AppendedBytes += int64(len(m.frame))
	switch m.opts.Sync {
	case SyncAlways:
		return m.Sync()
	case SyncInterval:
		if time.Since(m.last) >= m.opts.SyncEvery {
			return m.Sync()
		}
	}
	return nil
}

// openSegment creates (truncating any unacked previous-life leftovers) and
// switches to segment seq, durably finishing the previous segment first.
func (m *Mirror) openSegment(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(m.dir, segName(seq)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create mirrored segment %d: %w", seq, err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	if m.f != nil {
		syncErr := m.syncFile()
		closeErr := m.f.Close()
		if syncErr != nil {
			f.Close()
			return syncErr
		}
		if closeErr != nil {
			f.Close()
			return fmt.Errorf("wal: close previous segment: %w", closeErr)
		}
	}
	m.f = f
	m.seg = seq
	m.off = int64(len(segMagic))
	m.stats.Segment = seq
	syncDir(m.dir)
	return nil
}

// Sync flushes the current segment to stable storage (no-op when clean).
func (m *Mirror) Sync() error {
	if m.f == nil || !m.dirty {
		return nil
	}
	return m.syncFile()
}

func (m *Mirror) syncFile() error {
	if !m.dirty {
		return nil
	}
	start := time.Now()
	if err := m.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	lat := time.Since(start)
	m.stats.Fsyncs++
	if lat > m.stats.MaxFsyncLatency {
		m.stats.MaxFsyncLatency = lat
	}
	if m.opts.SyncObserver != nil {
		m.opts.SyncObserver(lat)
	}
	m.dirty = false
	m.last = time.Now()
	return nil
}

// RemoveSegmentsBefore deletes every mirrored segment with sequence < seq;
// the follower calls it after writing its own checkpoint at a shipped
// RecCheckpoint marker, exactly like the primary's checkpointing path.
func (m *Mirror) RemoveSegmentsBefore(seq uint64) error {
	return removeSegmentsBefore(m.dir, seq)
}

// Close syncs and closes the mirror. Promotion calls this before reopening
// the directory with Open, which continues in a fresh segment after the
// mirrored ones.
func (m *Mirror) Close() error {
	if m.f == nil {
		return nil
	}
	syncErr := m.syncFile()
	closeErr := m.f.Close()
	m.f = nil
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
