// Package wal implements the write-ahead log of the durability subsystem: a
// segmented, CRC-checked, append-only record of everything the serving layer
// ingests, written BEFORE the engine applies it. Recovery restores the newest
// checkpoint and replays the log's tail through the same deterministic epoch
// path, which — because every stochastic operation draws from positionally
// checkpointed random streams — reproduces the engine state byte-exactly.
//
// On disk a log is a directory of segment files wal-NNNNNNNNNNNNNNNN.seg,
// each starting with an 8-byte magic and containing frames in the shared
// rfid/wire format (u32le length, u32le CRC32C, payload) — the same framing
// and batch-body layout the streaming ingest connection speaks, so a batch is
// encoded identically whether it arrived over HTTP, over a stream, or is
// being logged. Only the highest-numbered segment is ever open for writing,
// so a crash can tear at most the tail of the newest segment; replay treats a
// torn tail as a clean end of log and reports it, while corruption anywhere
// else is surfaced as an error. The fsync policy is configurable: every
// append (strongest), periodic (bounded loss window) or never (leave flushing
// to the OS).
package wal

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/geom"
	"repro/internal/stream"
	"repro/rfid/wire"
)

// segMagic opens every segment file; the trailing digits version the frame
// format. 002: the record codec moved to the shared rfid/wire layout and
// RecBatch gained a stream sequence number.
const segMagic = "RFWAL002"

// RecordType discriminates the WAL record kinds.
type RecordType uint8

// The record kinds the serving layer logs.
const (
	// RecBatch is one ingested batch of raw readings and location reports,
	// logged before the runner sees it.
	RecBatch RecordType = 1
	// RecSeal records an explicit client-initiated flush: every buffered
	// epoch with time <= UpTo was sealed and processed. (Watermark-driven
	// sealing is deterministic from the batches alone and is not logged.)
	RecSeal RecordType = 2
	// RecCheckpoint marks that a checkpoint covering state through Epoch was
	// durably written; replay ignores it, operators reading a log dump see
	// where checkpoints landed.
	RecCheckpoint RecordType = 3
	// RecRegister is one continuous-query registration (the spec as its JSON
	// wire form); replayed so queries registered between checkpoints survive
	// a crash with their ids and sequence numbers intact.
	RecRegister RecordType = 4
	// RecUnregister is one query removal, by id.
	RecUnregister RecordType = 5
)

// Record is one logical WAL entry. Only the fields of the record's Type are
// meaningful.
type Record struct {
	Type RecordType

	// Readings and Locations carry a RecBatch payload.
	Readings  []stream.Reading
	Locations []stream.LocationReport
	// StreamSeq is the client-assigned batch sequence number of a RecBatch
	// that arrived over a streaming ingest connection; 0 for HTTP batches
	// (stream sequences start at 1). Recovery restores the session's
	// resume point from the highest replayed value.
	StreamSeq uint64

	// UpTo is the RecSeal horizon: epochs <= UpTo were force-sealed.
	UpTo int
	// FlushWindows records that the seal also flushed the registered
	// queries' held-back final epoch (POST /flush?windows=true) — a
	// state-mutating operation that must replay to keep query results
	// byte-identical after recovery.
	FlushWindows bool

	// Epoch is the RecCheckpoint coverage marker.
	Epoch int

	// SpecJSON is the RecRegister query spec in its JSON wire form.
	SpecJSON string
	// QueryID is the RecUnregister target.
	QueryID string
}

// batchSource adapts a RecBatch record to the shared wire.BatchSource, so
// the batch body bytes are produced by the one canonical codec.
type batchSource struct{ r *Record }

func (s batchSource) NumReadings() int { return len(s.r.Readings) }

func (s batchSource) ReadingAt(i int) (int, string) {
	rd := s.r.Readings[i]
	return rd.Time, string(rd.Tag)
}

func (s batchSource) NumLocations() int { return len(s.r.Locations) }

func (s batchSource) LocationAt(i int) (int, float64, float64, float64, float64, bool) {
	l := s.r.Locations[i]
	return l.Time, l.Pos.X, l.Pos.Y, l.Pos.Z, l.Phi, l.HasPhi
}

// batchSink collects a decoded batch body back into a record.
type batchSink struct{ r *Record }

func (s batchSink) Reading(t int, tag []byte) {
	s.r.Readings = append(s.r.Readings, stream.Reading{Time: t, Tag: stream.TagID(tag)})
}

func (s batchSink) Location(t int, x, y, z, phi float64, hasPhi bool) {
	s.r.Locations = append(s.r.Locations, stream.LocationReport{
		Time: t, Pos: geom.Vec3{X: x, Y: y, Z: z}, Phi: phi, HasPhi: hasPhi,
	})
}

// encodeTo serializes a record payload (without framing) onto e.
func (r Record) encodeTo(e *wire.Encoder) {
	e.Uvarint(uint64(r.Type))
	switch r.Type {
	case RecBatch:
		e.Uvarint(r.StreamSeq)
		wire.AppendBatch(e, batchSource{&r})
	case RecSeal:
		e.Int(r.UpTo)
		e.Bool(r.FlushWindows)
	case RecCheckpoint:
		e.Int(r.Epoch)
	case RecRegister:
		e.String(r.SpecJSON)
	case RecUnregister:
		e.String(r.QueryID)
	}
}

// encode serializes a record payload into a fresh buffer (test and tooling
// convenience; Append reuses a long-lived encoder instead).
func (r Record) encode() []byte {
	var e wire.Encoder
	r.encodeTo(&e)
	return e.Bytes()
}

// decodeRecord parses a record payload. It never panics on arbitrary bytes
// (pinned by FuzzWALDecode).
func decodeRecord(payload []byte) (Record, error) {
	var d wire.Decoder
	d.Reset(payload)
	var r Record
	r.Type = RecordType(d.Uvarint())
	switch r.Type {
	case RecBatch:
		r.StreamSeq = d.Uvarint()
		if d.Err() == nil {
			if err := wire.DecodeBatch(&d, batchSink{&r}); err != nil {
				return Record{}, fmt.Errorf("wal: bad record: %w", err)
			}
		}
	case RecSeal:
		r.UpTo = d.Int()
		r.FlushWindows = d.Bool()
	case RecCheckpoint:
		r.Epoch = d.Int()
	case RecRegister:
		r.SpecJSON = d.String()
	case RecUnregister:
		r.QueryID = d.String()
	default:
		if d.Err() == nil {
			return Record{}, fmt.Errorf("wal: unknown record type %d", r.Type)
		}
	}
	if err := d.Err(); err != nil {
		return Record{}, fmt.Errorf("wal: bad record: %w", err)
	}
	if d.Remaining() != 0 {
		return Record{}, fmt.Errorf("wal: %d trailing bytes after record", d.Remaining())
	}
	return r, nil
}

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: no acknowledged record is ever
	// lost, at the cost of one fsync per batch.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs when Options.SyncEvery has elapsed since the last
	// sync, bounding the loss window without per-append latency.
	SyncInterval
	// SyncNever leaves flushing to the operating system (a clean process
	// exit loses nothing; an OS crash may lose the tail).
	SyncNever
)

// ParseSyncPolicy maps the -fsync flag vocabulary onto a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// Options configures a Log.
type Options struct {
	// SegmentBytes is the rotation threshold (default 64 MiB): an append that
	// would grow the current segment past it starts a new segment first.
	SegmentBytes int64
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval period (default 100ms).
	SyncEvery time.Duration
	// SyncObserver, when non-nil, is invoked with the latency of every fsync
	// the log issues. The serving layer points it at a latency histogram; it
	// runs on the appending goroutine and must be fast and non-blocking.
	SyncObserver func(time.Duration)
}

func (o *Options) applyDefaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
}

// Stats are the log's cumulative counters, exported on the serving layer's
// metrics endpoint.
type Stats struct {
	// AppendedRecords and AppendedBytes count successful appends (bytes
	// include framing).
	AppendedRecords int64
	AppendedBytes   int64
	// Fsyncs counts fsync calls; MaxFsyncLatency is the slowest one observed.
	Fsyncs          int64
	MaxFsyncLatency time.Duration
	// Segment is the sequence number of the segment currently open for
	// appends.
	Segment uint64
}

// Log is an open write-ahead log. It is not safe for concurrent use; the
// serving layer appends only from its single engine goroutine.
type Log struct {
	dir   string
	opts  Options
	f     *os.File
	seq   uint64
	size  int64
	dirty bool
	last  time.Time // last sync
	stats Stats
	// enc and frame are reused across appends (payload build, then framing),
	// so steady-state appends allocate nothing and issue a single write.
	enc   wire.Encoder
	frame []byte
}

// segName returns the canonical file name for a segment sequence number.
func segName(seq uint64) string { return fmt.Sprintf("wal-%016d.seg", seq) }

// segSeq parses a segment file name; ok is false for foreign files.
func segSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
	if len(mid) != 16 {
		return 0, false
	}
	var seq uint64
	for i := 0; i < len(mid); i++ {
		c := mid[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(c-'0')
	}
	return seq, true
}

// Segments lists the log's segment sequence numbers in dir, ascending. A
// missing directory yields an empty list.
func Segments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []uint64
	for _, ent := range entries {
		if seq, ok := segSeq(ent.Name()); ok && !ent.IsDir() {
			out = append(out, seq)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Open creates (or reuses) the log directory and opens a FRESH segment after
// the highest existing one. Existing segments are never appended to — a
// recovering process replays them read-only and then writes into its own new
// segment, so a torn tail from the previous life can never be written past.
func Open(dir string, opts Options) (*Log, error) {
	opts.applyDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	segs, err := Segments(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: scan segments: %w", err)
	}
	next := uint64(1)
	if len(segs) > 0 {
		next = segs[len(segs)-1] + 1
	}
	l := &Log{dir: dir, opts: opts, last: time.Now()}
	if err := l.openSegment(next); err != nil {
		return nil, err
	}
	return l, nil
}

// openSegment creates and switches to segment seq.
func (l *Log) openSegment(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment %d: %w", seq, err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	if l.f != nil {
		syncErr := l.syncFile() // durably finish the old segment
		closeErr := l.f.Close()
		if syncErr != nil {
			f.Close()
			return syncErr
		}
		if closeErr != nil {
			f.Close()
			return fmt.Errorf("wal: close previous segment: %w", closeErr)
		}
	}
	l.f = f
	l.seq = seq
	l.size = int64(len(segMagic))
	l.stats.Segment = seq
	syncDir(l.dir)
	return nil
}

// Segment returns the sequence number of the segment currently open for
// appends.
func (l *Log) Segment() uint64 { return l.seq }

// Stats returns the cumulative counters.
func (l *Log) Stats() Stats { return l.stats }

// crcTable retains the frame checksum polynomial for test helpers; the
// framing itself lives in rfid/wire.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Append frames and writes one record, rotating the segment first when the
// write would cross the size threshold, then applies the fsync policy. The
// caller may only treat the record as durable once Append returns nil under
// SyncAlways (or after an explicit Sync).
func (l *Log) Append(rec Record) error {
	if l.f == nil {
		return fmt.Errorf("wal: log is closed")
	}
	l.enc.Reset()
	rec.encodeTo(&l.enc)
	l.frame = wire.AppendFrame(l.frame[:0], l.enc.Bytes())
	frame := int64(len(l.frame))
	if l.size+frame > l.opts.SegmentBytes && l.size > int64(len(segMagic)) {
		if err := l.openSegment(l.seq + 1); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(l.frame); err != nil {
		return fmt.Errorf("wal: append frame: %w", err)
	}
	l.size += frame
	l.dirty = true
	l.stats.AppendedRecords++
	l.stats.AppendedBytes += frame
	switch l.opts.Sync {
	case SyncAlways:
		return l.Sync()
	case SyncInterval:
		if time.Since(l.last) >= l.opts.SyncEvery {
			return l.Sync()
		}
	}
	return nil
}

// Sync flushes the current segment to stable storage (a no-op when nothing
// was appended since the last sync).
func (l *Log) Sync() error {
	if l.f == nil || !l.dirty {
		return nil
	}
	return l.syncFile()
}

func (l *Log) syncFile() error {
	if !l.dirty {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	lat := time.Since(start)
	l.stats.Fsyncs++
	if lat > l.stats.MaxFsyncLatency {
		l.stats.MaxFsyncLatency = lat
	}
	if l.opts.SyncObserver != nil {
		l.opts.SyncObserver(lat)
	}
	l.dirty = false
	l.last = time.Now()
	return nil
}

// Rotate durably closes the current segment and opens the next one,
// returning the new segment's sequence number. The checkpointing path calls
// it right before writing a checkpoint: the snapshot records the returned
// sequence as its replay start, and every older segment becomes garbage once
// the checkpoint is durable.
func (l *Log) Rotate() (uint64, error) {
	if l.f == nil {
		return 0, fmt.Errorf("wal: log is closed")
	}
	if err := l.openSegment(l.seq + 1); err != nil {
		return 0, err
	}
	return l.seq, nil
}

// RemoveSegmentsBefore deletes every segment with sequence < seq; the
// checkpointing path calls it after a checkpoint recording seq as its replay
// start has been durably written.
func (l *Log) RemoveSegmentsBefore(seq uint64) error {
	return removeSegmentsBefore(l.dir, seq)
}

// removeSegmentsBefore is the shared GC sweep behind Log.RemoveSegmentsBefore
// and Mirror.RemoveSegmentsBefore.
func removeSegmentsBefore(dir string, seq uint64) error {
	segs, err := Segments(dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s >= seq {
			break
		}
		if err := os.Remove(filepath.Join(dir, segName(s))); err != nil {
			return fmt.Errorf("wal: remove segment %d: %w", s, err)
		}
	}
	return nil
}

// Close syncs and closes the log. The log cannot be used afterwards.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	syncErr := l.syncFile()
	closeErr := l.f.Close()
	l.f = nil
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// syncDir fsyncs the log directory so segment creation survives power loss;
// best-effort.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// ReplayStats summarizes one replay pass.
type ReplayStats struct {
	// Records is the number of records delivered to the callback.
	Records int
	// Segments is the number of segment files visited.
	Segments int
	// Torn reports that the final segment ended in a partial or
	// CRC-mismatched frame — the expected signature of a crash mid-append —
	// and replay stopped cleanly there.
	Torn bool
}

// Replay reads every segment with sequence >= fromSeg in order and invokes fn
// for each decoded record. A torn tail in the final segment ends the replay
// cleanly (see ReplayStats.Torn); malformed bytes anywhere else are an error,
// as is a callback error (returned immediately).
func Replay(dir string, fromSeg uint64, fn func(Record) error) (ReplayStats, error) {
	var st ReplayStats
	segs, err := Segments(dir)
	if err != nil {
		return st, err
	}
	for i, seq := range segs {
		if seq < fromSeg {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, segName(seq)))
		if err != nil {
			return st, fmt.Errorf("wal: read segment %d: %w", seq, err)
		}
		st.Segments++
		tail := i == len(segs)-1
		n, torn, err := replaySegment(data, tail, fn)
		st.Records += n
		if err != nil {
			return st, fmt.Errorf("wal: segment %d: %w", seq, err)
		}
		if torn {
			st.Torn = true
			break
		}
	}
	return st, nil
}

// replaySegment decodes one segment image. When tail is true, a partial or
// corrupt frame ends the scan cleanly (torn == true); otherwise it is an
// error. It never panics on arbitrary bytes (pinned by FuzzWALDecode).
func replaySegment(data []byte, tail bool, fn func(Record) error) (records int, torn bool, err error) {
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		if tail && len(data) < len(segMagic) {
			// A crash immediately after segment creation can leave a short
			// header; treat it as an empty torn tail rather than corruption.
			return 0, true, nil
		}
		return 0, false, fmt.Errorf("bad segment magic")
	}
	rest := data[len(segMagic):]
	for len(rest) > 0 {
		off := len(data) - len(rest)
		payload, next, err := wire.NextFrame(rest)
		if err != nil {
			// Both framing failures (a cut-short frame and a CRC mismatch)
			// are the expected signatures of a crash mid-append in the tail
			// segment; anywhere else they are corruption.
			if tail {
				return records, true, nil
			}
			return records, false, fmt.Errorf("bad frame at offset %d: %w", off, err)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			// The CRC matched, so these bytes were written whole: this is
			// corruption or a format bug, not a torn tail.
			return records, false, err
		}
		if err := fn(rec); err != nil {
			return records, false, err
		}
		records++
		rest = next
	}
	return records, false, nil
}
