package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"repro/internal/geom"
	"repro/internal/stream"
)

// frame wraps a payload in the on-disk frame format (test helper mirroring
// Append's framing).
func frame(payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	return append(hdr[:], payload...)
}

// FuzzWALDecode hardens the replay surface: an arbitrary segment image must
// never panic the scanner — whatever a crash, bit rot or an attacker leaves
// in the data directory surfaces as a torn tail or an error. Valid prefixes
// additionally satisfy the round-trip property via the seeded corpus.
func FuzzWALDecode(f *testing.F) {
	// Seed with a valid segment image, a truncation and raw noise.
	valid := []byte(segMagic)
	for _, r := range []Record{
		{Type: RecBatch,
			Readings:  []stream.Reading{{Time: 1, Tag: "obj-1"}},
			Locations: []stream.LocationReport{{Time: 1, Pos: geom.Vec3{X: 2}, HasPhi: true, Phi: 0.5}}},
		{Type: RecSeal, UpTo: 9},
		{Type: RecCheckpoint, Epoch: 3},
	} {
		valid = append(valid, frame(r.encode())...)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte(segMagic))
	f.Add([]byte("RFWAL002\xff\xff\xff\xff\x00\x00\x00\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, tail := range []bool{true, false} {
			n, torn, err := replaySegment(data, tail, func(Record) error { return nil })
			if n < 0 {
				t.Fatal("negative record count")
			}
			if !tail && torn {
				t.Fatal("non-tail segment reported torn")
			}
			_ = err
		}
	})
}

// FuzzRecordDecode drives the record codec directly: arbitrary payloads must
// error or decode, never panic, and anything accepted must round-trip through
// encode/decode to an identical record.
func FuzzRecordDecode(f *testing.F) {
	f.Add(Record{Type: RecSeal, UpTo: 42}.encode())
	f.Add(Record{Type: RecCheckpoint, Epoch: 7}.encode())
	f.Add(Record{Type: RecBatch,
		Readings:  []stream.Reading{{Time: 3, Tag: "a"}, {Time: 3, Tag: "b"}},
		Locations: []stream.LocationReport{{Time: 3, Pos: geom.Vec3{Y: -1}}},
	}.encode())
	f.Add([]byte{})
	f.Add([]byte{9})

	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := decodeRecord(payload)
		if err != nil {
			return
		}
		enc := rec.encode()
		again, err := decodeRecord(enc)
		if err != nil {
			t.Fatalf("re-encoding an accepted record fails to decode: %v", err)
		}
		// Compare via a second encode rather than reflect.DeepEqual: floats
		// (coordinates, phi) may legitimately hold NaN, which DeepEqual
		// treats as unequal to itself even when round-tripped bit-exactly.
		if !bytes.Equal(again.encode(), enc) {
			t.Fatalf("round trip changed record:\n got %+v\nwant %+v", again, rec)
		}
	})
}
