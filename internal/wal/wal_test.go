package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/stream"
)

func testRecords() []Record {
	return []Record{
		{Type: RecBatch,
			Readings: []stream.Reading{{Time: 0, Tag: "obj-1"}, {Time: 0, Tag: "obj-2"}},
			Locations: []stream.LocationReport{
				{Time: 0, Pos: geom.Vec3{X: 1.5, Y: -2, Z: 0.25}, Phi: 0.7, HasPhi: true},
			}},
		{Type: RecSeal, UpTo: 4},
		{Type: RecBatch, Readings: []stream.Reading{{Time: 5, Tag: "obj-1"}}},
		{Type: RecCheckpoint, Epoch: 5},
	}
}

func appendAll(t *testing.T, l *Log, recs []Record) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("append %+v: %v", r, err)
		}
	}
}

func replayAll(t *testing.T, dir string, from uint64) ([]Record, ReplayStats) {
	t.Helper()
	var got []Record
	st, err := Replay(dir, from, func(r Record) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, st
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, st := replayAll(t, dir, 0)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, recs)
	}
	if st.Torn || st.Records != len(recs) || st.Segments != 1 {
		t.Fatalf("unexpected replay stats %+v", st)
	}

	stats := l.Stats()
	if stats.AppendedRecords != int64(len(recs)) || stats.AppendedBytes == 0 || stats.Fsyncs == 0 {
		t.Fatalf("unexpected log stats %+v", stats)
	}
}

func TestRotationAndPruning(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, testRecords()[:2])
	newSeq, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if newSeq != l.Segment() || newSeq != 2 {
		t.Fatalf("rotate returned %d, segment %d", newSeq, l.Segment())
	}
	appendAll(t, l, testRecords()[2:])
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay from the post-rotation segment sees only the later records.
	got, _ := replayAll(t, dir, newSeq)
	if !reflect.DeepEqual(got, testRecords()[2:]) {
		t.Fatalf("partial replay mismatch: %+v", got)
	}

	// A new Open starts a fresh segment after the highest existing one.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l2.Segment() != 3 {
		t.Fatalf("reopened segment = %d, want 3", l2.Segment())
	}
	if err := l2.RemoveSegmentsBefore(newSeq); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(segs, []uint64{2, 3}) {
		t.Fatalf("segments after prune: %v, want [2 3]", segs)
	}
}

func TestSegmentSizeRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(Record{Type: RecSeal, UpTo: i}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected size-based rotation, got segments %v", segs)
	}
	got, _ := replayAll(t, dir, 0)
	if len(got) != 10 {
		t.Fatalf("replayed %d records, want 10", len(got))
	}
	for i, r := range got {
		if r.UpTo != i {
			t.Fatalf("record %d out of order: %+v", i, r)
		}
	}
}

func TestTornTailStopsCleanly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	appendAll(t, l, recs)
	l.Close()

	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-way through the last frame: a crash signature.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	got, st := replayAll(t, dir, 0)
	if !st.Torn {
		t.Fatal("torn tail not reported")
	}
	if !reflect.DeepEqual(got, recs[:len(recs)-1]) {
		t.Fatalf("torn replay delivered %+v", got)
	}

	// The same damage in a NON-final segment is corruption, not a torn tail.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l2, recs[:1])
	l2.Close()
	if _, err := Replay(dir, 0, func(Record) error { return nil }); err == nil {
		t.Fatal("mid-log corruption not surfaced as an error")
	}
}

func TestSyncIntervalPolicy(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncInterval, SyncEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, testRecords())
	if got := l.Stats().Fsyncs; got != 0 {
		t.Fatalf("interval policy fsynced %d times within the window", got)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Fsyncs; got != 1 {
		t.Fatalf("explicit sync recorded %d fsyncs, want 1", got)
	}
	l.Close()
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "never": SyncNever} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := l.Append(Record{Type: RecSeal}); err == nil {
		t.Fatal("append on closed log succeeded")
	}
	if _, err := l.Rotate(); err == nil {
		t.Fatal("rotate on closed log succeeded")
	}
}
