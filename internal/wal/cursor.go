package wal

// Cursor is the read side of WAL shipping: a tailing reader over a live log
// directory that a primary uses to stream records to followers. Unlike Replay
// (a one-shot pass over a quiescent log at recovery), a cursor coexists with a
// concurrent appender: it reads with positional reads on its own descriptors,
// reports "nothing more right now" as io.EOF, and resumes from an exact
// (segment, offset) position — the same coordinates the replication protocol
// carries in hellos and acks.
//
// Concurrency model: the appender writes each frame with a single write call
// and only ever appends to the highest-numbered segment. The cursor therefore
// treats any unreadable frame (short header, short payload, CRC mismatch, or
// absurd length prefix — all possible glimpses of a write in flight) in the
// NEWEST segment as "not yet": it stays put and returns io.EOF so the caller
// retries later. The same signature in a finished (non-newest) segment is the
// torn tail of a crashed previous life — the writer never appends past a tear,
// so skipping to the next segment skips only garbage. A missing segment, or a
// gap in the sequence, means garbage collection outran this cursor and the
// follower must re-bootstrap from a checkpoint: ErrSegmentGone.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// ErrSegmentGone reports that the cursor's position (or a segment between it
// and the newest) was garbage-collected by the checkpointing path. The log no
// longer contains every record after the cursor, so a follower cannot catch up
// by tailing — it must re-bootstrap from a newer checkpoint.
var ErrSegmentGone = errors.New("wal: cursor segment garbage-collected")

// errStall is the internal "cannot read a whole valid frame here" signal —
// clean end of data, short frame, CRC mismatch and garbage length prefix all
// collapse into it; position decides what it means.
var errStall = errors.New("wal: frame stall")

// maxCursorFrame bounds the length prefix a cursor will trust before reading a
// payload. WAL frames are far smaller (the ingest surface caps bodies at
// 8 MiB); a prefix beyond this is mid-write garbage, not a frame.
const maxCursorFrame = 64 << 20

// DecodeRecord parses a record payload (frame contents, without framing). It
// is the exported form of the codec Replay uses, for callers that receive
// payload bytes out of band — the replication apply path. It never panics on
// arbitrary bytes.
func DecodeRecord(payload []byte) (Record, error) { return decodeRecord(payload) }

// Cursor is a tailing reader positioned in a log directory. Not safe for
// concurrent use by multiple goroutines, but safe to run against a directory
// with one live appender (Log or Mirror).
type Cursor struct {
	dir string
	seg uint64
	off int64

	// recSeg/recOff are the start position of the record Next last returned —
	// what a shipper stamps on the frame it forwards.
	recSeg uint64
	recOff int64

	f       *os.File
	magicOK bool
	hdr     [8]byte
	buf     []byte
}

// OpenCursor positions a cursor at (seg, off) in dir. Offsets inside the
// segment header are normalized to the first frame boundary. A seg of 0 means
// "the oldest segment present when reading starts" — the bootstrap position
// for a log that has never checkpointed.
func OpenCursor(dir string, seg uint64, off int64) (*Cursor, error) {
	if off < int64(len(segMagic)) {
		off = int64(len(segMagic))
	}
	return &Cursor{dir: dir, seg: seg, off: off}, nil
}

// Pos returns the position of the next unread byte: the resume point to carry
// in a replication hello or ack.
func (c *Cursor) Pos() (seg uint64, off int64) { return c.seg, c.off }

// RecordPos returns the start position of the record the last successful Next
// returned (meaningless before the first).
func (c *Cursor) RecordPos() (seg uint64, off int64) { return c.recSeg, c.recOff }

// Close releases the cursor's descriptor. The cursor cannot be used after.
func (c *Cursor) Close() error {
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}

// Next returns the next record along with its raw payload bytes (aliasing an
// internal buffer, valid only until the following Next). io.EOF means "no
// more records right now" — the log may grow, call again later. ErrSegmentGone
// means the log was GC'd past this cursor. Any other error is corruption or
// I/O failure.
func (c *Cursor) Next() (Record, []byte, error) {
	payload, err := c.nextFrame()
	if err != nil {
		return Record{}, nil, err
	}
	rec, err := decodeRecord(payload)
	if err != nil {
		// The CRC matched, so these bytes were written whole: this is
		// corruption or a format bug, never a write in flight.
		return Record{}, nil, fmt.Errorf("wal: cursor at segment %d offset %d: %w", c.recSeg, c.recOff, err)
	}
	return rec, payload, nil
}

// nextFrame advances to and returns the next CRC-valid frame payload,
// crossing finished segments as needed.
func (c *Cursor) nextFrame() ([]byte, error) {
	for {
		if c.seg == 0 {
			segs, err := Segments(c.dir)
			if err != nil {
				return nil, err
			}
			if len(segs) == 0 {
				return nil, io.EOF
			}
			c.seg, c.off = segs[0], int64(len(segMagic))
		}
		if c.f == nil {
			f, err := os.Open(filepath.Join(c.dir, segName(c.seg)))
			if err != nil {
				if !os.IsNotExist(err) {
					return nil, err
				}
				// The segment is not on disk. Newer ones existing means ours
				// was GC'd; otherwise it simply has not been created yet.
				hasNewer, _, serr := c.newerSegment()
				if serr != nil {
					return nil, serr
				}
				if hasNewer {
					return nil, ErrSegmentGone
				}
				return nil, io.EOF
			}
			c.f = f
			c.magicOK = false
		}
		start := c.off
		payload, err := c.readFrameAt()
		if err == nil {
			c.recSeg, c.recOff = c.seg, start
			return payload, nil
		}
		if err != errStall {
			return nil, err
		}
		// No whole valid frame at c.off. In the newest segment that is a
		// write in flight (or simply the end of the log): wait. In a finished
		// segment it is the previous life's torn tail and the next segment
		// continues the log — unless GC opened a gap.
		hasNewer, next, serr := c.newerSegment()
		if serr != nil {
			return nil, serr
		}
		if !hasNewer {
			return nil, io.EOF
		}
		if next != c.seg+1 {
			return nil, ErrSegmentGone
		}
		c.f.Close()
		c.f = nil
		c.seg, c.off = next, int64(len(segMagic))
	}
}

// newerSegment scans the directory for the smallest segment above the
// cursor's.
func (c *Cursor) newerSegment() (ok bool, next uint64, err error) {
	segs, err := Segments(c.dir)
	if err != nil {
		return false, 0, err
	}
	for _, s := range segs {
		if s > c.seg {
			return true, s, nil
		}
	}
	return false, 0, nil
}

// readFrameAt reads one whole valid frame at c.off, advancing past it on
// success. Every way a frame can fail to be whole returns errStall.
func (c *Cursor) readFrameAt() ([]byte, error) {
	if !c.magicOK {
		var magic [len(segMagic)]byte
		n, err := c.f.ReadAt(magic[:], 0)
		if err != nil && err != io.EOF {
			return nil, err
		}
		if n < len(magic) {
			return nil, errStall // header mid-write or a crash right after create
		}
		if string(magic[:]) != segMagic {
			return nil, fmt.Errorf("wal: segment %d: bad segment magic", c.seg)
		}
		c.magicOK = true
	}
	n, err := c.f.ReadAt(c.hdr[:], c.off)
	if err != nil && err != io.EOF {
		return nil, err
	}
	if n < len(c.hdr) {
		return nil, errStall
	}
	plen := int(binary.LittleEndian.Uint32(c.hdr[0:4]))
	want := binary.LittleEndian.Uint32(c.hdr[4:8])
	if plen > maxCursorFrame {
		return nil, errStall
	}
	if cap(c.buf) < plen {
		c.buf = make([]byte, plen)
	}
	buf := c.buf[:plen]
	n, err = c.f.ReadAt(buf, c.off+int64(len(c.hdr)))
	if err != nil && err != io.EOF {
		return nil, err
	}
	if n < plen {
		return nil, errStall
	}
	if crc32.Checksum(buf, crcTable) != want {
		return nil, errStall
	}
	c.off += int64(len(c.hdr)) + int64(plen)
	return buf, nil
}
