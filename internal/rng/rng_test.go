package rng

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("two sources with the same seed diverged")
		}
	}
	c := New(43)
	same := true
	for i := 0; i < 10; i++ {
		if New(42).Fork().Float64() == c.Float64() {
			continue
		}
		same = false
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestUniformRange(t *testing.T) {
	s := New(1)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Uniform(-2,5) = %v out of range", v)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
	// Rough frequency check.
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if p < 0.27 || p > 0.33 {
		t.Errorf("Bernoulli(0.3) frequency = %v", p)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(7)
	n := 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(3, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-3) > 0.1 {
		t.Errorf("Normal mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.3 {
		t.Errorf("Normal variance = %v, want ~4", variance)
	}
}

func TestUniformInBox(t *testing.T) {
	s := New(5)
	box := geom.NewBBox(geom.V(-1, 2, 0), geom.V(1, 4, 0.5))
	for i := 0; i < 500; i++ {
		p := s.UniformInBox(box)
		if !box.Contains(p) {
			t.Fatalf("UniformInBox produced %v outside %v", p, box)
		}
	}
}

func TestUniformInCone(t *testing.T) {
	s := New(9)
	pose := geom.P(1, 2, 0, math.Pi/4)
	half := 30 * math.Pi / 180
	maxR := 3.0
	for i := 0; i < 1000; i++ {
		p := s.UniformInCone(pose, half, maxR)
		d, theta := pose.DistanceAngleTo(p)
		if d > maxR+1e-9 {
			t.Fatalf("cone sample at distance %v > %v", d, maxR)
		}
		if theta > half+1e-9 {
			t.Fatalf("cone sample at angle %v > %v", theta, half)
		}
	}
}

func TestCategoricalRespectsWeights(t *testing.T) {
	s := New(11)
	weights := []float64{0, 1, 3}
	counts := make([]int, 3)
	n := 30000
	for i := 0; i < n; i++ {
		counts[s.Categorical(weights)]++
	}
	if counts[0] != 0 {
		t.Errorf("zero-weight category drawn %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("category ratio = %v, want ~3", ratio)
	}
}

func TestCategoricalDegenerateWeights(t *testing.T) {
	s := New(13)
	// All-zero weights fall back to uniform; must not panic and must cover
	// the full index range.
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		idx := s.Categorical([]float64{0, 0, 0})
		if idx < 0 || idx > 2 {
			t.Fatalf("index out of range: %d", idx)
		}
		seen[idx] = true
	}
	if len(seen) < 2 {
		t.Error("degenerate categorical is not spreading draws")
	}
}

func TestSystematicResampling(t *testing.T) {
	s := New(17)
	weights := []float64{0.1, 0.0, 0.6, 0.3}
	idx := s.Systematic(weights, 1000)
	if len(idx) != 1000 {
		t.Fatalf("wrong number of indices: %d", len(idx))
	}
	counts := make([]int, 4)
	for _, i := range idx {
		if i < 0 || i >= 4 {
			t.Fatalf("index out of range: %d", i)
		}
		counts[i]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight particle selected %d times", counts[1])
	}
	// Systematic resampling keeps counts within one of the expectation.
	if c := counts[2]; c < 550 || c > 650 {
		t.Errorf("weight-0.6 particle selected %d times, want ~600", c)
	}
	if c := counts[3]; c < 250 || c > 350 {
		t.Errorf("weight-0.3 particle selected %d times, want ~300", c)
	}
}

func TestSystematicDegenerateInputs(t *testing.T) {
	s := New(19)
	if out := s.Systematic(nil, 5); len(out) != 0 {
		t.Errorf("expected empty result for empty weights, got %v", out)
	}
	if out := s.Systematic([]float64{1, 2}, 0); len(out) != 0 {
		t.Errorf("expected empty result for n=0, got %v", out)
	}
	out := s.Systematic([]float64{0, 0}, 10)
	if len(out) != 10 {
		t.Errorf("zero-weight resampling returned %d indices", len(out))
	}
}

func TestShuffleAndPerm(t *testing.T) {
	s := New(23)
	p := s.Shuffle(10)
	if len(p) != 10 {
		t.Fatalf("Shuffle(10) returned %d elements", len(p))
	}
	seen := make(map[int]bool)
	for _, v := range p {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Error("Shuffle is not a permutation")
	}
	orig := []int{5, 6, 7}
	perm := s.Perm(orig)
	if len(perm) != 3 {
		t.Fatal("Perm changed length")
	}
	if &perm[0] == &orig[0] {
		t.Error("Perm must not alias its input")
	}
}

func TestSeedForDerivation(t *testing.T) {
	if SeedFor(1, "object:a") != SeedFor(1, "object:a") {
		t.Error("SeedFor not deterministic")
	}
	if SeedFor(1, "object:a") == SeedFor(1, "object:b") {
		t.Error("distinct keys should derive distinct seeds")
	}
	if SeedFor(1, "object:a") == SeedFor(2, "object:a") {
		t.Error("distinct base seeds should derive distinct seeds")
	}
	if SeedFor(1, "x") < 0 {
		t.Error("derived seed must be non-negative")
	}
}

func TestDeriveIndependentOfSiblings(t *testing.T) {
	// Unlike Fork, Derive consumes no stream state: deriving b after a (or
	// not deriving a at all) yields the same stream for b.
	b1 := Derive(7, "b")
	_ = Derive(7, "a")
	b2 := Derive(7, "b")
	for i := 0; i < 10; i++ {
		if b1.Float64() != b2.Float64() {
			t.Fatal("Derive stream depends on sibling derivations")
		}
	}
}
