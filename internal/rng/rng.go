// Package rng provides the deterministic random sources used throughout the
// RFID inference system. All stochastic components (simulation, particle
// proposal, resampling, EM restarts) draw from an rng.Source seeded
// explicitly so that experiments and tests are reproducible.
package rng

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// countingSource wraps a rand.Source64 and counts the low-level draws it
// serves. Every Source method ultimately pulls values through this single
// choke point, so the pair (seed, draw count) fully determines a stream's
// position: the durability layer checkpoints exactly those two numbers and
// NewAt replays the count to restore the stream bit-exactly.
type countingSource struct {
	src rand.Source64
	n   uint64
}

// Int63 implements rand.Source.
func (c *countingSource) Int63() int64 { c.n++; return c.src.Int63() }

// Uint64 implements rand.Source64.
func (c *countingSource) Uint64() uint64 { c.n++; return c.src.Uint64() }

// Seed implements rand.Source.
func (c *countingSource) Seed(seed int64) { c.src.Seed(seed); c.n = 0 }

// Source is a seeded pseudo-random source with the sampling helpers the
// inference engine needs. It is not safe for concurrent use; create one per
// goroutine.
type Source struct {
	r    *rand.Rand
	cs   *countingSource
	seed int64
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	cs := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &Source{r: rand.New(cs), cs: cs, seed: seed}
}

// NewAt returns a Source seeded with seed and fast-forwarded to the given
// stream position (the Pos() of the source being restored). The replay is
// O(pos) but each skipped draw costs only a generator step, so restoring even
// multi-million-draw streams takes milliseconds; recovery pays this once.
func NewAt(seed int64, pos uint64) *Source {
	s := New(seed)
	for i := uint64(0); i < pos; i++ {
		s.cs.src.Uint64()
	}
	s.cs.n = pos
	return s
}

// Seed returns the seed the source was created with.
func (s *Source) Seed() int64 { return s.seed }

// Pos returns the number of low-level draws consumed so far. Together with
// Seed it pins the stream's exact position: NewAt(Seed(), Pos()) produces a
// source whose future draws are identical to this one's.
func (s *Source) Pos() uint64 { return s.cs.n }

// Fork returns a new independent Source derived from the current stream.
// Forked sources let sub-components (e.g. per-object particle sets) evolve
// deterministically regardless of the processing order of their siblings.
func (s *Source) Fork() *Source {
	return New(s.r.Int63())
}

// SeedFor derives a child seed from a base seed and a string key by hashing
// both with FNV-1a. Unlike Fork, the derivation does not consume any state
// from an existing stream, so the resulting seed depends only on (seed, key):
// components keyed by a stable identifier (e.g. a tag id) receive the same
// stream no matter how many siblings exist or in which order they are
// created. This is what makes sharded inference results independent of the
// shard count and worker schedule.
func SeedFor(seed int64, key string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	h.Write([]byte(key))
	return int64(h.Sum64() & math.MaxInt64)
}

// Derive returns a Source seeded with SeedFor(seed, key).
func Derive(seed int64, key string) *Source {
	return New(SeedFor(seed, key))
}

// Float64 returns a uniform draw in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform draw in [0, n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Uniform returns a uniform draw in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.r.Float64() < p
}

// Normal returns a draw from N(mu, sigma^2).
func (s *Source) Normal(mu, sigma float64) float64 {
	return mu + sigma*s.r.NormFloat64()
}

// NormalVec returns a 3-D vector whose components are independent draws from
// N(mu_i, sigma_i^2).
func (s *Source) NormalVec(mu, sigma geom.Vec3) geom.Vec3 {
	return geom.Vec3{
		X: s.Normal(mu.X, sigma.X),
		Y: s.Normal(mu.Y, sigma.Y),
		Z: s.Normal(mu.Z, sigma.Z),
	}
}

// UniformInBox returns a point drawn uniformly inside the bounding box.
func (s *Source) UniformInBox(b geom.BBox) geom.Vec3 {
	return geom.Vec3{
		X: s.Uniform(b.Min.X, b.Max.X),
		Y: s.Uniform(b.Min.Y, b.Max.Y),
		Z: s.Uniform(b.Min.Z, b.Max.Z),
	}
}

// UniformInCone returns a point drawn uniformly (by area, in the XY plane)
// from the cone that originates at the reader pose, opens by halfAngle
// radians on each side of the heading and extends to maxRange feet. The
// paper's sensor-model-based initialization draws new object particles from
// exactly such a cone, chosen as an overestimate of the reader's true range.
func (s *Source) UniformInCone(p geom.Pose, halfAngle, maxRange float64) geom.Vec3 {
	// Sample radius with density proportional to r so that points are
	// uniform by area rather than clustered near the apex.
	r := maxRange * math.Sqrt(s.r.Float64())
	a := p.Phi + s.Uniform(-halfAngle, halfAngle)
	return geom.Vec3{
		X: p.Pos.X + r*math.Cos(a),
		Y: p.Pos.Y + r*math.Sin(a),
		Z: p.Pos.Z,
	}
}

// Categorical draws an index in [0, len(weights)) with probability
// proportional to weights[i]. Weights must be non-negative; if they sum to
// zero the draw is uniform.
func (s *Source) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return s.r.Intn(len(weights))
	}
	u := s.r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w > 0 {
			acc += w
		}
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Systematic performs systematic (low-variance) resampling: it returns n
// indices drawn from the categorical distribution defined by weights using a
// single uniform offset. Systematic resampling is the standard choice for
// particle filters because it minimizes resampling noise.
func (s *Source) Systematic(weights []float64, n int) []int {
	return s.SystematicInto(make([]int, 0, n), weights, n)
}

// SystematicInto is Systematic with a caller-provided destination buffer: the
// n drawn indices are appended to dst and the extended slice returned, so hot
// paths can reuse one buffer across calls and resample without allocating.
// The draw sequence is identical to Systematic's for the same source state.
func (s *Source) SystematicInto(dst []int, weights []float64, n int) []int {
	m := len(weights)
	out := dst
	if m == 0 || n == 0 {
		return out
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		for i := 0; i < n; i++ {
			out = append(out, s.r.Intn(m))
		}
		return out
	}
	step := total / float64(n)
	u := s.r.Float64() * step
	acc := 0.0
	idx := 0
	for i := 0; i < n; i++ {
		target := u + float64(i)*step
		for idx < m-1 {
			w := weights[idx]
			if w < 0 {
				w = 0
			}
			if acc+w > target {
				break
			}
			acc += w
			idx++
		}
		out = append(out, idx)
	}
	return out
}

// Shuffle randomly permutes the integers [0, n) and returns them.
func (s *Source) Shuffle(n int) []int {
	return s.r.Perm(n)
}

// Perm permutes a copy of the provided slice of indices.
func (s *Source) Perm(idx []int) []int {
	out := make([]int, len(idx))
	copy(out, idx)
	s.r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
