package rng

import (
	"testing"

	"repro/internal/geom"
)

// drawMix exercises every sampling helper so the position counter is verified
// across all draw shapes (single-draw, multi-draw rejection loops, vectors).
func drawMix(s *Source, out *[]float64) {
	*out = append(*out, s.Float64())
	*out = append(*out, s.Normal(1, 2))
	*out = append(*out, float64(s.Intn(1000)))
	v := s.NormalVec(geom.Vec3{X: 1}, geom.Vec3{X: 1, Y: 2, Z: 3})
	*out = append(*out, v.X, v.Y, v.Z)
	*out = append(*out, s.Uniform(-3, 9))
	c := s.UniformInCone(geom.Pose{Phi: 0.3}, 0.5, 4)
	*out = append(*out, c.X, c.Y, c.Z)
	*out = append(*out, float64(s.Categorical([]float64{0.1, 0.5, 0.2, 0.2})))
	for _, i := range s.Systematic([]float64{0.25, 0.25, 0.5}, 5) {
		*out = append(*out, float64(i))
	}
	if s.Bernoulli(0.5) {
		*out = append(*out, 1)
	} else {
		*out = append(*out, 0)
	}
}

// TestNewAtContinuation is the property the checkpoint subsystem builds on: a
// source restored with NewAt(seed, pos) continues the original stream
// bit-exactly, no matter where the split falls.
func TestNewAtContinuation(t *testing.T) {
	for _, splitRounds := range []int{0, 1, 3, 17} {
		orig := New(42)
		var pre []float64
		for i := 0; i < splitRounds; i++ {
			drawMix(orig, &pre)
		}
		pos := orig.Pos()

		restored := NewAt(42, pos)
		if restored.Pos() != pos {
			t.Fatalf("split %d: restored Pos = %d, want %d", splitRounds, restored.Pos(), pos)
		}
		var a, b []float64
		for i := 0; i < 5; i++ {
			drawMix(orig, &a)
			drawMix(restored, &b)
		}
		if len(a) != len(b) {
			t.Fatalf("split %d: draw counts differ: %d vs %d", splitRounds, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("split %d: draw %d diverged: %v vs %v", splitRounds, i, a[i], b[i])
			}
		}
		if orig.Pos() != restored.Pos() {
			t.Fatalf("split %d: positions diverged after identical draws: %d vs %d", splitRounds, orig.Pos(), restored.Pos())
		}
	}
}

// TestPosAdvances pins that the counter observes the low-level draws (not the
// helper calls), so multi-draw helpers advance it by more than one.
func TestPosAdvances(t *testing.T) {
	s := New(7)
	if s.Pos() != 0 {
		t.Fatalf("fresh source Pos = %d, want 0", s.Pos())
	}
	s.Float64()
	one := s.Pos()
	if one == 0 {
		t.Fatal("Float64 did not advance Pos")
	}
	s.NormalVec(geom.Vec3{}, geom.Vec3{X: 1, Y: 1, Z: 1})
	if s.Pos() <= one {
		t.Fatal("NormalVec did not advance Pos")
	}
	if s.Seed() != 7 {
		t.Fatalf("Seed = %d, want 7", s.Seed())
	}
}

// TestNewAtUnchangedValues guards against the counting wrapper perturbing the
// generated sequence: New(seed) must emit the same values as a bare
// math/rand source did before the wrapper existed (spot-checked via Fork
// determinism and cross-instance agreement).
func TestCountingWrapperTransparent(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 100; i++ {
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("draw %d: identical seeds diverged: %v vs %v", i, x, y)
		}
	}
	// Fork consumes one draw from the parent and derives a child; both sides
	// must stay deterministic.
	c1 := New(5).Fork()
	c2 := New(5).Fork()
	if x, y := c1.Normal(0, 1), c2.Normal(0, 1); x != y {
		t.Fatalf("forked children diverged: %v vs %v", x, y)
	}
}
