package spatial

import (
	"repro/internal/checkpoint"
	"repro/internal/stream"
)

const indexSection = "spatial.SensingIndex"

// SaveState appends the index contents — every sensing-region box with its
// associated objects, in insertion order — to the encoder. The R*-tree itself
// is not serialized: insertion is deterministic, so RestoreState rebuilds an
// identical tree by replaying the insertions.
func (x *SensingIndex) SaveState(e *checkpoint.Encoder) {
	e.Section(indexSection)
	e.Uvarint(uint64(len(x.boxes)))
	for i, box := range x.boxes {
		e.BBox(box)
		e.Uvarint(uint64(len(x.objects[i])))
		for _, id := range x.objects[i] {
			e.String(string(id))
		}
	}
}

// RestoreState rebuilds the index from a SaveState payload by re-inserting
// every entry in its original order; the index must be freshly constructed.
// Corrupt input errors, never panics.
func (x *SensingIndex) RestoreState(d *checkpoint.Decoder) error {
	d.Section(indexSection)
	n := d.SliceLen(8 * 6)
	for i := 0; i < n && d.Err() == nil; i++ {
		box := d.BBox()
		m := d.SliceLen(1)
		objs := make([]stream.TagID, 0, m)
		for j := 0; j < m && d.Err() == nil; j++ {
			objs = append(objs, stream.TagID(d.String()))
		}
		if d.Err() == nil {
			x.InsertOwned(box, objs)
		}
	}
	return d.Err()
}
