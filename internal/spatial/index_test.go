package spatial

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/stream"
)

func TestSensingIndexInsertAndQuery(t *testing.T) {
	idx := NewSensingIndex()
	if idx.Len() != 0 {
		t.Error("new index not empty")
	}
	// Two sensing regions along a scan path, each with the objects whose
	// particles fell inside.
	idx.Insert(geom.BBoxAround(geom.V(0, 0, 0), 2), []stream.TagID{"a", "b"})
	idx.Insert(geom.BBoxAround(geom.V(0, 5, 0), 2), []stream.TagID{"c"})
	if idx.Len() != 2 {
		t.Errorf("Len = %d", idx.Len())
	}

	// A query overlapping only the first region returns its objects (Case 2
	// of Fig. 4: read before near the current reader location).
	got := idx.Query(geom.BBoxAround(geom.V(0, 1, 0), 1.5))
	if !hasTag(got, "a") || !hasTag(got, "b") || hasTag(got, "c") {
		t.Errorf("Query = %v", got)
	}
	// A query far from every recorded region returns nothing (Case 4 objects
	// are skipped entirely).
	if got := idx.Query(geom.BBoxAround(geom.V(0, 50, 0), 2)); len(got) != 0 {
		t.Errorf("far query = %v", got)
	}
	// A query overlapping both regions returns the union without duplicates.
	got = idx.Query(geom.BBoxAround(geom.V(0, 2.5, 0), 3))
	if len(got) != 3 {
		t.Errorf("union query = %v", got)
	}
}

func TestSensingIndexDeduplicatesAcrossRegions(t *testing.T) {
	idx := NewSensingIndex()
	// The same object appears in several overlapping sensing regions, as
	// happens when the reader creeps along a shelf.
	for i := 0; i < 10; i++ {
		idx.Insert(geom.BBoxAround(geom.V(0, float64(i)*0.1, 0), 2), []stream.TagID{"obj"})
	}
	got := idx.Query(geom.BBoxAround(geom.V(0, 0.5, 0), 1))
	count := 0
	for _, id := range got {
		if id == "obj" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("object returned %d times, want 1", count)
	}
}

func TestSensingIndexIgnoresEmptyInserts(t *testing.T) {
	idx := NewSensingIndex()
	idx.Insert(geom.EmptyBBox(), []stream.TagID{"a"})
	idx.Insert(geom.BBoxAround(geom.V(0, 0, 0), 1), nil)
	if idx.Len() != 0 {
		t.Errorf("empty inserts were stored: %d", idx.Len())
	}
	if got := idx.Query(geom.BBoxAround(geom.V(0, 0, 0), 1)); len(got) != 0 {
		t.Errorf("query on empty index = %v", got)
	}
}

func TestSensingIndexCopiesObjectSlices(t *testing.T) {
	idx := NewSensingIndex()
	objs := []stream.TagID{"a"}
	idx.Insert(geom.BBoxAround(geom.V(0, 0, 0), 1), objs)
	objs[0] = "mutated"
	got := idx.Query(geom.BBoxAround(geom.V(0, 0, 0), 1))
	if !hasTag(got, "a") || hasTag(got, "mutated") {
		t.Error("index aliases the caller's slice")
	}
}

func TestSensingIndexQueryBoxes(t *testing.T) {
	idx := NewSensingIndex()
	b := geom.BBoxAround(geom.V(1, 1, 0), 1)
	idx.Insert(b, []stream.TagID{"a"})
	boxes := idx.QueryBoxes(geom.BBoxAround(geom.V(1, 1, 0), 0.5))
	if len(boxes) != 1 || boxes[0] != b {
		t.Errorf("QueryBoxes = %v", boxes)
	}
}

func hasTag(ids []stream.TagID, want stream.TagID) bool {
	for _, id := range ids {
		if id == want {
			return true
		}
	}
	return false
}
