package spatial

import (
	"repro/internal/geom"
	"repro/internal/stream"
)

// SensingIndex is the two-component index of Fig. 4(b)/(c): an R*-tree over
// the bounding boxes of past sensing regions, plus, for each bounding box,
// the set of objects that had at least one particle inside it when the box
// was inserted. Probing the index with the current sensing region yields the
// Case-2 objects: tags not read in the current epoch but read before near the
// current reader location, whose particles therefore need to be
// down-weighted.
type SensingIndex struct {
	tree    *RTree
	boxes   []geom.BBox
	objects [][]stream.TagID
	// lastInsert tracks the most recent box inserted per object so that
	// repeated insertions from consecutive epochs (which overlap heavily) do
	// not blow up the index: a new box for an object is only recorded when it
	// does not contain the previous one.
	numEntries int

	// seen is the query-time de-duplication scratch, cleared per query so
	// that probing every epoch does not allocate a fresh map.
	seen map[stream.TagID]bool
}

// NewSensingIndex returns an empty index.
func NewSensingIndex() *SensingIndex {
	return &SensingIndex{tree: NewRTree(8), seen: make(map[stream.TagID]bool)}
}

// Len returns the number of indexed sensing regions.
func (x *SensingIndex) Len() int { return x.numEntries }

// Insert records a sensing-region bounding box together with the objects that
// currently have at least one particle inside it. Boxes with no associated
// objects are not stored. The objs slice is copied; use InsertOwned when the
// caller can hand over ownership instead.
func (x *SensingIndex) Insert(box geom.BBox, objs []stream.TagID) {
	if box.IsEmpty() || len(objs) == 0 {
		return
	}
	cp := make([]stream.TagID, len(objs))
	copy(cp, objs)
	x.InsertOwned(box, cp)
}

// InsertOwned is Insert taking ownership of objs: the index stores the slice
// directly and the caller must not reuse it. The engine builds each epoch's
// association list once and hands it over, so indexed state is written
// exactly once with no intermediate copies.
func (x *SensingIndex) InsertOwned(box geom.BBox, objs []stream.TagID) {
	if box.IsEmpty() || len(objs) == 0 {
		return
	}
	id := len(x.boxes)
	x.boxes = append(x.boxes, box)
	x.objects = append(x.objects, objs)
	x.tree.Insert(box, id)
	x.numEntries++
}

// Query returns the union of the objects associated with every indexed
// sensing region that overlaps the query box, de-duplicated, in no particular
// order.
func (x *SensingIndex) Query(box geom.BBox) []stream.TagID {
	return x.QueryInto(box, nil)
}

// QueryInto is Query appending into a caller-owned buffer (pass dst[:0] to
// reuse its backing array). De-duplication runs through the index's scratch
// map, so a warm caller probes without allocating; consequently the index is
// not safe for concurrent queries (the engine only queries from the
// sequential epoch prologue).
func (x *SensingIndex) QueryInto(box geom.BBox, dst []stream.TagID) []stream.TagID {
	if box.IsEmpty() || x.numEntries == 0 {
		return dst
	}
	clear(x.seen)
	out := dst
	x.tree.SearchFunc(box, func(id int) {
		for _, obj := range x.objects[id] {
			if !x.seen[obj] {
				x.seen[obj] = true
				out = append(out, obj)
			}
		}
	})
	return out
}

// QueryBoxes returns the bounding boxes overlapping the query box; exposed
// for tests and diagnostics.
func (x *SensingIndex) QueryBoxes(box geom.BBox) []geom.BBox {
	var out []geom.BBox
	x.tree.SearchFunc(box, func(id int) {
		out = append(out, x.boxes[id])
	})
	return out
}
