package spatial

import (
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rng"
)

func box(x0, y0, x1, y1 float64) geom.BBox {
	return geom.NewBBox(geom.V(x0, y0, 0), geom.V(x1, y1, 0))
}

func TestRTreeInsertAndSearchSmall(t *testing.T) {
	tr := NewRTree(4)
	tr.Insert(box(0, 0, 1, 1), 1)
	tr.Insert(box(2, 2, 3, 3), 2)
	tr.Insert(box(0.5, 0.5, 2.5, 2.5), 3)

	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
	got := tr.Search(box(0.9, 0.9, 1.1, 1.1))
	if !containsAll(got, 1, 3) || contains(got, 2) {
		t.Errorf("Search = %v, want {1,3}", got)
	}
	if got := tr.Search(box(10, 10, 11, 11)); len(got) != 0 {
		t.Errorf("Search far away = %v, want empty", got)
	}
	// Empty query boxes return nothing.
	if got := tr.Search(geom.EmptyBBox()); len(got) != 0 {
		t.Errorf("empty query returned %v", got)
	}
	// Empty boxes are not inserted.
	tr.Insert(geom.EmptyBBox(), 99)
	if contains(tr.Search(box(-100, -100, 100, 100)), 99) {
		t.Error("empty box was inserted")
	}
}

func TestRTreeSplitsAndGrows(t *testing.T) {
	tr := NewRTree(4)
	// Insert enough entries to force several node splits and a root split.
	n := 200
	for i := 0; i < n; i++ {
		x := float64(i % 20)
		y := float64(i / 20)
		tr.Insert(box(x, y, x+0.5, y+0.5), i)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	if tr.Height() < 2 {
		t.Errorf("expected the tree to grow beyond a single leaf, height = %d", tr.Height())
	}
	// Every entry must be findable by a query centered on it.
	for i := 0; i < n; i++ {
		x := float64(i % 20)
		y := float64(i / 20)
		got := tr.Search(box(x+0.1, y+0.1, x+0.2, y+0.2))
		if !contains(got, i) {
			t.Fatalf("entry %d not found after splits", i)
		}
	}
	// A full-coverage query returns everything exactly once.
	all := tr.Search(box(-1, -1, 30, 30))
	if len(all) != n {
		t.Errorf("full query returned %d entries, want %d", len(all), n)
	}
	seen := map[int]bool{}
	for _, id := range all {
		if seen[id] {
			t.Errorf("entry %d returned twice", id)
		}
		seen[id] = true
	}
}

func TestRTreeSearchFunc(t *testing.T) {
	tr := NewRTree(4)
	for i := 0; i < 10; i++ {
		tr.Insert(box(float64(i), 0, float64(i)+0.9, 1), i)
	}
	count := 0
	tr.SearchFunc(box(2.5, 0, 5.5, 1), func(id int) { count++ })
	if count != 4 {
		t.Errorf("SearchFunc visited %d entries, want 4 (ids 2..5)", count)
	}
}

// Property: R-tree search results always match a brute-force scan.
func TestRTreeMatchesBruteForceProperty(t *testing.T) {
	type rect struct{ x, y, w, h float64 }
	f := func(seed int64) bool {
		src := rng.New(seed)
		tr := NewRTree(6)
		var boxes []geom.BBox
		n := 120
		for i := 0; i < n; i++ {
			x := src.Uniform(0, 50)
			y := src.Uniform(0, 50)
			w := src.Uniform(0.1, 4)
			h := src.Uniform(0.1, 4)
			b := box(x, y, x+w, y+h)
			boxes = append(boxes, b)
			tr.Insert(b, i)
		}
		for q := 0; q < 25; q++ {
			x := src.Uniform(-2, 50)
			y := src.Uniform(-2, 50)
			query := box(x, y, x+src.Uniform(0.1, 8), y+src.Uniform(0.1, 8))
			got := map[int]bool{}
			for _, id := range tr.Search(query) {
				got[id] = true
			}
			for i, b := range boxes {
				want := b.Intersects(query)
				if got[i] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func contains(ids []int, want int) bool {
	for _, id := range ids {
		if id == want {
			return true
		}
	}
	return false
}

func containsAll(ids []int, want ...int) bool {
	for _, w := range want {
		if !contains(ids, w) {
			return false
		}
	}
	return true
}
