// Package spatial implements the spatial indexing technique of Section IV-C:
// a simplified R*-tree over the bounding boxes of past reader sensing
// regions, together with a mapping from each bounding box to the objects that
// had at least one particle inside it. At each epoch the inference engine
// probes the index with the current sensing region to find the Case-2 objects
// (not read now, but read before near the current reader location) and skips
// the Case-4 objects entirely.
package spatial

import (
	"repro/internal/geom"
)

// RTree is a simplified R*-tree over axis-aligned bounding boxes with integer
// payloads. Nodes are split with the classic quadratic-cost heuristic and the
// choose-subtree step minimizes volume enlargement, which is the part of the
// R*-tree design that matters for this workload (bounding boxes arrive in a
// spatially coherent order as the reader sweeps the warehouse).
type RTree struct {
	root       *rtreeNode
	maxEntries int
	minEntries int
	size       int
}

type rtreeEntry struct {
	box   geom.BBox
	id    int        // leaf payload
	child *rtreeNode // non-leaf pointer
}

type rtreeNode struct {
	leaf    bool
	entries []rtreeEntry
}

// NewRTree returns an empty tree. maxEntries controls the node fan-out;
// values below 4 are raised to 4.
func NewRTree(maxEntries int) *RTree {
	if maxEntries < 4 {
		maxEntries = 4
	}
	return &RTree{
		root:       &rtreeNode{leaf: true},
		maxEntries: maxEntries,
		minEntries: maxEntries / 2,
	}
}

// Len returns the number of stored entries.
func (t *RTree) Len() int { return t.size }

// Insert adds a bounding box with an integer payload.
func (t *RTree) Insert(box geom.BBox, id int) {
	if box.IsEmpty() {
		return
	}
	t.size++
	leaf := t.chooseLeaf(t.root, box, nil)
	leaf.node.entries = append(leaf.node.entries, rtreeEntry{box: box, id: id})
	t.adjustTree(leaf)
}

// Search returns the payloads of all entries whose boxes intersect the query
// box.
func (t *RTree) Search(box geom.BBox) []int {
	var out []int
	if box.IsEmpty() {
		return out
	}
	t.search(t.root, box, &out)
	return out
}

// SearchFunc invokes fn for every payload whose box intersects the query box.
func (t *RTree) SearchFunc(box geom.BBox, fn func(id int)) {
	if box.IsEmpty() {
		return
	}
	var walk func(n *rtreeNode)
	walk = func(n *rtreeNode) {
		for _, e := range n.entries {
			if !e.box.Intersects(box) {
				continue
			}
			if n.leaf {
				fn(e.id)
			} else {
				walk(e.child)
			}
		}
	}
	walk(t.root)
}

func (t *RTree) search(n *rtreeNode, box geom.BBox, out *[]int) {
	for _, e := range n.entries {
		if !e.box.Intersects(box) {
			continue
		}
		if n.leaf {
			*out = append(*out, e.id)
		} else {
			t.search(e.child, box, out)
		}
	}
}

// path records the descent from the root so splits can propagate upward.
type rtreePath struct {
	node   *rtreeNode
	parent *rtreePath
	// entryIdx is the index of this node's entry within the parent.
	entryIdx int
}

// chooseLeaf descends to the leaf whose bounding box needs the least volume
// enlargement to accommodate the new box (ties broken by smaller volume).
func (t *RTree) chooseLeaf(n *rtreeNode, box geom.BBox, parent *rtreePath) *rtreePath {
	self := &rtreePath{node: n, parent: parent}
	if n.leaf {
		return self
	}
	best := 0
	bestEnl := n.entries[0].box.Enlargement(box)
	bestVol := n.entries[0].box.Volume()
	for i := 1; i < len(n.entries); i++ {
		enl := n.entries[i].box.Enlargement(box)
		vol := n.entries[i].box.Volume()
		if enl < bestEnl || (enl == bestEnl && vol < bestVol) {
			best, bestEnl, bestVol = i, enl, vol
		}
	}
	self.entryIdx = best
	child := n.entries[best].child
	path := t.chooseLeaf(child, box, self)
	return path
}

// adjustTree updates bounding boxes along the insertion path and splits
// overflowing nodes, growing the tree at the root when necessary.
func (t *RTree) adjustTree(p *rtreePath) {
	for p != nil {
		n := p.node
		if p.parent != nil {
			// Refresh the parent's bounding box for this child.
			p.parent.node.entries[p.parent.entryIdx].box = nodeBBox(n)
		}
		if len(n.entries) > t.maxEntries {
			left, right := t.splitNode(n)
			if p.parent == nil {
				// Grow a new root.
				newRoot := &rtreeNode{leaf: false}
				newRoot.entries = append(newRoot.entries,
					rtreeEntry{box: nodeBBox(left), child: left},
					rtreeEntry{box: nodeBBox(right), child: right},
				)
				t.root = newRoot
			} else {
				parent := p.parent.node
				parent.entries[p.parent.entryIdx] = rtreeEntry{box: nodeBBox(left), child: left}
				parent.entries = append(parent.entries, rtreeEntry{box: nodeBBox(right), child: right})
			}
		}
		p = p.parent
	}
}

func nodeBBox(n *rtreeNode) geom.BBox {
	b := geom.EmptyBBox()
	for _, e := range n.entries {
		b = b.Union(e.box)
	}
	return b
}

// splitNode splits an overflowing node with the quadratic heuristic: pick the
// pair of entries that would waste the most volume if grouped together as
// seeds, then assign remaining entries to the group needing least
// enlargement.
func (t *RTree) splitNode(n *rtreeNode) (*rtreeNode, *rtreeNode) {
	entries := n.entries
	seedA, seedB := pickSeeds(entries)

	left := &rtreeNode{leaf: n.leaf, entries: []rtreeEntry{entries[seedA]}}
	right := &rtreeNode{leaf: n.leaf, entries: []rtreeEntry{entries[seedB]}}
	leftBox := entries[seedA].box
	rightBox := entries[seedB].box

	for i, e := range entries {
		if i == seedA || i == seedB {
			continue
		}
		remaining := len(entries) - i
		// Force assignment when one group must take all remaining entries to
		// reach the minimum fill.
		if len(left.entries)+remaining <= t.minEntries {
			left.entries = append(left.entries, e)
			leftBox = leftBox.Union(e.box)
			continue
		}
		if len(right.entries)+remaining <= t.minEntries {
			right.entries = append(right.entries, e)
			rightBox = rightBox.Union(e.box)
			continue
		}
		enlL := leftBox.Enlargement(e.box)
		enlR := rightBox.Enlargement(e.box)
		if enlL < enlR || (enlL == enlR && leftBox.Volume() <= rightBox.Volume()) {
			left.entries = append(left.entries, e)
			leftBox = leftBox.Union(e.box)
		} else {
			right.entries = append(right.entries, e)
			rightBox = rightBox.Union(e.box)
		}
	}

	// Reuse n as the left node so parent pointers that reference it stay
	// valid; return both halves.
	n.entries = left.entries
	n.leaf = left.leaf
	return n, right
}

// pickSeeds returns the indices of the two entries whose combined bounding
// box wastes the most volume (the quadratic split seed selection).
func pickSeeds(entries []rtreeEntry) (int, int) {
	seedA, seedB := 0, 1
	worst := -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			union := entries[i].box.Union(entries[j].box)
			waste := union.Volume() - entries[i].box.Volume() - entries[j].box.Volume()
			if waste > worst {
				worst = waste
				seedA, seedB = i, j
			}
		}
	}
	return seedA, seedB
}

// Height returns the height of the tree (1 for a tree that is just a leaf).
func (t *RTree) Height() int {
	h := 1
	n := t.root
	for !n.leaf {
		h++
		n = n.entries[0].child
	}
	return h
}
