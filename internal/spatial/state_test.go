package spatial

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/geom"
	"repro/internal/stream"
)

// TestSensingIndexStateRoundTrip pins that a restored index answers queries
// identically to the original (the tree is rebuilt by replaying insertions).
func TestSensingIndexStateRoundTrip(t *testing.T) {
	a := NewSensingIndex()
	for i := 0; i < 12; i++ {
		box := geom.NewBBox(
			geom.Vec3{X: float64(i), Y: float64(i)},
			geom.Vec3{X: float64(i) + 2, Y: float64(i) + 2, Z: 1},
		)
		a.Insert(box, []stream.TagID{
			stream.TagID("obj-" + string(rune('a'+i%4))),
			stream.TagID("obj-x"),
		})
	}

	enc := checkpoint.NewEncoder()
	a.SaveState(enc)
	b := NewSensingIndex()
	if err := b.RestoreState(checkpoint.NewDecoder(enc.Bytes())); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("restored index holds %d entries, want %d", b.Len(), a.Len())
	}
	for i := 0; i < 14; i++ {
		probe := geom.NewBBox(
			geom.Vec3{X: float64(i) - 0.5, Y: float64(i) - 0.5},
			geom.Vec3{X: float64(i) + 0.5, Y: float64(i) + 0.5, Z: 1},
		)
		want := a.Query(probe)
		got := b.Query(probe)
		sort.Slice(want, func(x, y int) bool { return want[x] < want[y] })
		sort.Slice(got, func(x, y int) bool { return got[x] < got[y] })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("probe %d diverged: %v vs %v", i, got, want)
		}
	}
}

// TestSensingIndexRestoreRejectsCorrupt pins error-not-panic.
func TestSensingIndexRestoreRejectsCorrupt(t *testing.T) {
	a := NewSensingIndex()
	a.Insert(geom.NewBBox(geom.Vec3{}, geom.Vec3{X: 1, Y: 1, Z: 1}), []stream.TagID{"o"})
	enc := checkpoint.NewEncoder()
	a.SaveState(enc)
	payload := enc.Bytes()
	for _, cut := range []int{0, 1, len(payload) - 1} {
		if err := NewSensingIndex().RestoreState(checkpoint.NewDecoder(payload[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}
