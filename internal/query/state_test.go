package query

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/geom"
	"repro/internal/stream"
)

// fakeHistory is a canned HistorySource for registry tests.
type fakeHistory struct {
	oldest, newest int
	events         map[int][]stream.Event
}

func (h *fakeHistory) HistoryBounds() (int, int, bool) {
	return h.oldest, h.newest, h.newest >= h.oldest && len(h.events) > 0
}

func (h *fakeHistory) HistoryEvents(epoch int) ([]stream.Event, bool) {
	evs, ok := h.events[epoch]
	return evs, ok
}

func histEvents() *fakeHistory {
	h := &fakeHistory{oldest: 10, newest: 12, events: map[int][]stream.Event{}}
	for t := 10; t <= 12; t++ {
		h.events[t] = []stream.Event{
			{Time: t, Tag: "obj-1", Loc: geom.Vec3{X: float64(t), Y: 1}},
			{Time: t, Tag: "obj-2", Loc: geom.Vec3{X: float64(t), Y: 2}},
		}
	}
	return h
}

func TestHistoryModeQuery(t *testing.T) {
	r := NewRegistry(0)
	// Without a source, history registrations are rejected.
	if _, err := r.Register(Spec{Kind: KindLocationUpdates, Mode: ModeHistory}); err == nil {
		t.Fatal("history query accepted without a history source")
	}
	r.SetHistorySource(histEvents())

	info, err := r.Register(Spec{Kind: KindLocationUpdates, Mode: ModeHistory, FromEpoch: 10, ToEpoch: 11})
	if err != nil {
		t.Fatalf("register history query: %v", err)
	}
	if !info.Finished {
		t.Fatal("history query not marked finished at registration")
	}
	results, _, err := r.Results(info.ID, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Two objects, each emitting its first update at epoch 10 and a changed
	// location at epoch 11.
	if len(results) != 4 {
		t.Fatalf("history query produced %d rows, want 4: %+v", len(results), results)
	}
	// Feeding the live stream must NOT advance a finished query.
	r.Feed([]stream.Event{{Time: 99, Tag: "obj-1", Loc: geom.Vec3{X: 42}}})
	after, _, _ := r.Results(info.ID, -1, 0)
	if len(after) != len(results) {
		t.Fatal("finished history query received live events")
	}

	// ToEpoch zero means "through the newest sealed epoch".
	info2, err := r.Register(Spec{Kind: KindWindowedAggregate, Mode: ModeHistory, FromEpoch: 0, ToEpoch: 0, WindowEpochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows, _, _ := r.Results(info2.ID, -1, 0)
	if len(rows) != 3 { // one count row per epoch 10..12
		t.Fatalf("aggregate history produced %d rows, want 3: %+v", len(rows), rows)
	}

	// A range entirely outside the retained window errors.
	if _, err := r.Register(Spec{Kind: KindLocationUpdates, Mode: ModeHistory, FromEpoch: 50, ToEpoch: 60}); err == nil {
		t.Fatal("out-of-window history range accepted")
	}
}

func TestSpecModeValidation(t *testing.T) {
	if err := (Spec{Kind: KindFireCode, Mode: "time-machine"}).Validate(); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if err := (Spec{Kind: KindFireCode, Mode: ModeHistory, FromEpoch: 9, ToEpoch: 3}).Validate(); err == nil {
		t.Fatal("inverted history range accepted")
	}
	if err := (Spec{Kind: KindFireCode, Mode: ModeContinuous}).Validate(); err != nil {
		t.Fatalf("continuous mode rejected: %v", err)
	}
}

// feedRegistry pushes a deterministic event stream through a registry.
func feedRegistry(r *Registry, from, to int) {
	for t := from; t < to; t++ {
		r.Feed([]stream.Event{
			{Time: t, Tag: "obj-1", Loc: geom.Vec3{X: float64(t)}},
			{Time: t, Tag: "obj-2", Loc: geom.Vec3{X: float64(t), Y: 3}},
		})
	}
}

// TestRegistryStateRoundTrip is the recovery property at the query layer: a
// registry checkpointed mid-stream and restored into a fresh one produces
// identical polled bytes and identical future rows, including mid-window
// aggregate state.
func TestRegistryStateRoundTrip(t *testing.T) {
	specs := []Spec{
		{Kind: KindLocationUpdates, MinChange: 0.5},
		{Kind: KindFireCode, WindowEpochs: 3, ThresholdPounds: 1.5},
		{Kind: KindWindowedAggregate, WindowEpochs: 2, Op: AggSumWeight, GroupBy: GroupByArea},
	}
	ref := NewRegistry(0)
	split := NewRegistry(0)
	for _, s := range specs {
		if _, err := ref.Register(s); err != nil {
			t.Fatal(err)
		}
		if _, err := split.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	feedRegistry(ref, 0, 20)
	feedRegistry(split, 0, 9)

	enc := checkpoint.NewEncoder()
	split.SaveState(enc)
	restored := NewRegistry(0)
	if err := restored.RestoreState(checkpoint.NewDecoder(enc.Bytes())); err != nil {
		t.Fatalf("restore: %v", err)
	}
	feedRegistry(restored, 9, 20)

	for _, info := range ref.List() {
		want, wantInfo, err := ref.Results(info.ID, -1, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, gotInfo, err := restored.Results(info.ID, -1, 0)
		if err != nil {
			t.Fatalf("restored registry lost query %s: %v", info.ID, err)
		}
		if wantInfo.NextSeq != gotInfo.NextSeq || wantInfo.Buffered != gotInfo.Buffered {
			t.Fatalf("%s: info diverged: %+v vs %+v", info.ID, gotInfo, wantInfo)
		}
		wantJSON, _ := json.Marshal(want)
		gotJSON, _ := json.Marshal(got)
		if string(wantJSON) != string(gotJSON) {
			t.Fatalf("%s: polled results diverged after restore:\n got %s\nwant %s", info.ID, gotJSON, wantJSON)
		}
	}

	// A fresh registration after restore continues the id sequence.
	info, err := restored.Register(Spec{Kind: KindLocationUpdates})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "q4" {
		t.Fatalf("post-restore id = %s, want q4", info.ID)
	}
}

// TestRegistryRestoreRejectsCorrupt pins error-not-panic on malformed
// payloads.
func TestRegistryRestoreRejectsCorrupt(t *testing.T) {
	r := NewRegistry(0)
	if _, err := r.Register(Spec{Kind: KindFireCode}); err != nil {
		t.Fatal(err)
	}
	feedRegistry(r, 0, 5)
	enc := checkpoint.NewEncoder()
	r.SaveState(enc)
	payload := enc.Bytes()
	for _, cut := range []int{0, 1, len(payload) / 2, len(payload) - 1} {
		fresh := NewRegistry(0)
		if err := fresh.RestoreState(checkpoint.NewDecoder(payload[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestEventCodecRoundTrip(t *testing.T) {
	evs := []stream.Event{
		{Time: 3, Tag: "a", Loc: geom.Vec3{X: 1.25, Y: -2, Z: 0.5},
			Stats: stream.EventStats{Variance: geom.Vec3{X: 0.1}, NumParticles: 120, Compressed: true}},
		{},
	}
	enc := checkpoint.NewEncoder()
	saveEvents(enc, evs)
	got := restoreEvents(checkpoint.NewDecoder(enc.Bytes()))
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("event codec round trip: %+v vs %+v", got, evs)
	}
}
