// Package query implements the continuous-query processing layer of Section
// II-B: CQL-style windows and stream operators over the clean event stream
// produced by the inference engine, plus the two example queries of the paper
// (the per-object location-update query and the fire-code weight-density
// query). The operators work in a streaming fashion: each pushed event may
// emit zero or more results immediately.
package query

import (
	"sort"

	"repro/internal/stream"
)

// RowWindow implements a CQL partitioned row window:
// "EventStream [Partition By tag_id Rows N]" keeps the last N events of each
// tag.
type RowWindow struct {
	rows int
	byID map[stream.TagID][]stream.Event
}

// NewRowWindow returns a partition-by row window keeping the last rows events
// per tag (rows < 1 is treated as 1).
func NewRowWindow(rows int) *RowWindow {
	if rows < 1 {
		rows = 1
	}
	return &RowWindow{rows: rows, byID: make(map[stream.TagID][]stream.Event)}
}

// Push inserts an event and returns the event it displaced for that tag, if
// any.
func (w *RowWindow) Push(ev stream.Event) (stream.Event, bool) {
	list := w.byID[ev.Tag]
	list = append(list, ev)
	var evicted stream.Event
	hadEvicted := false
	if len(list) > w.rows {
		evicted = list[0]
		hadEvicted = true
		list = list[1:]
	}
	w.byID[ev.Tag] = list
	return evicted, hadEvicted
}

// Latest returns the most recent event for a tag.
func (w *RowWindow) Latest(tag stream.TagID) (stream.Event, bool) {
	list := w.byID[tag]
	if len(list) == 0 {
		return stream.Event{}, false
	}
	return list[len(list)-1], true
}

// Previous returns the event before the most recent one for a tag (only
// meaningful for windows with rows >= 2).
func (w *RowWindow) Previous(tag stream.TagID) (stream.Event, bool) {
	list := w.byID[tag]
	if len(list) < 2 {
		return stream.Event{}, false
	}
	return list[len(list)-2], true
}

// Tags returns the tags currently present in the window, sorted.
func (w *RowWindow) Tags() []stream.TagID {
	out := make([]stream.TagID, 0, len(w.byID))
	for id := range w.byID {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TimeWindow implements a CQL range window: "[Range N seconds]" retains the
// events whose time lies within the last N epochs of the current time.
type TimeWindow struct {
	rangeEpochs int
	events      []stream.Event
}

// NewTimeWindow returns a range window spanning rangeEpochs epochs.
func NewTimeWindow(rangeEpochs int) *TimeWindow {
	if rangeEpochs < 0 {
		rangeEpochs = 0
	}
	return &TimeWindow{rangeEpochs: rangeEpochs}
}

// Push inserts an event and evicts events that fell out of the range relative
// to the event's time.
func (w *TimeWindow) Push(ev stream.Event) {
	w.events = append(w.events, ev)
	w.AdvanceTo(ev.Time)
}

// AdvanceTo evicts events older than now - range without inserting anything.
func (w *TimeWindow) AdvanceTo(now int) {
	cutoff := now - w.rangeEpochs
	i := 0
	for i < len(w.events) && w.events[i].Time < cutoff {
		i++
	}
	if i > 0 {
		w.events = append([]stream.Event(nil), w.events[i:]...)
	}
}

// Contents returns the events currently in the window.
func (w *TimeWindow) Contents() []stream.Event {
	out := make([]stream.Event, len(w.events))
	copy(out, w.events)
	return out
}

// Len returns the number of events in the window.
func (w *TimeWindow) Len() int { return len(w.events) }

// GroupSum aggregates SUM(value) grouped by a string key over a slice of
// events; it backs the Group By / Having clause of the fire-code query.
func GroupSum(events []stream.Event, key func(stream.Event) string, value func(stream.Event) float64) map[string]float64 {
	out := make(map[string]float64)
	for _, ev := range events {
		out[key(ev)] += value(ev)
	}
	return out
}
