package query

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/stream"
)

func ev(t int, tag string, x, y float64) stream.Event {
	return stream.Event{Time: t, Tag: stream.TagID(tag), Loc: geom.V(x, y, 0)}
}

func TestRowWindowKeepsLastNPerTag(t *testing.T) {
	w := NewRowWindow(1)
	if _, evicted := w.Push(ev(1, "a", 0, 0)); evicted {
		t.Error("first push should not evict")
	}
	old, evicted := w.Push(ev(2, "a", 1, 1))
	if !evicted || old.Time != 1 {
		t.Error("second push should evict the first event")
	}
	if latest, ok := w.Latest("a"); !ok || latest.Time != 2 {
		t.Error("Latest wrong")
	}
	if _, ok := w.Previous("a"); ok {
		t.Error("row-1 window has no previous")
	}
	two := NewRowWindow(2)
	two.Push(ev(1, "b", 0, 0))
	two.Push(ev(2, "b", 1, 0))
	if prev, ok := two.Previous("b"); !ok || prev.Time != 1 {
		t.Error("Previous wrong for rows=2")
	}
	if tags := two.Tags(); len(tags) != 1 || tags[0] != "b" {
		t.Errorf("Tags = %v", tags)
	}
}

func TestTimeWindowEviction(t *testing.T) {
	w := NewTimeWindow(5)
	w.Push(ev(0, "a", 0, 0))
	w.Push(ev(3, "b", 0, 0))
	if w.Len() != 2 {
		t.Errorf("window length = %d, want 2 before expiry", w.Len())
	}
	w.Push(ev(9, "c", 0, 0))
	// Events older than 9-5=4 are evicted, leaving only the newest one.
	if w.Len() != 1 {
		t.Errorf("window length = %d, want 1 after expiry", w.Len())
	}
	w.AdvanceTo(20)
	if w.Len() != 0 {
		t.Errorf("window not emptied: %d", w.Len())
	}
}

func TestGroupSum(t *testing.T) {
	events := []stream.Event{ev(0, "a", 0, 0), ev(0, "b", 0, 0), ev(0, "c", 5, 0)}
	sums := GroupSum(events,
		func(e stream.Event) string { return SquareFtArea(e.Loc).String() },
		func(e stream.Event) float64 { return 10 },
	)
	if sums["(0,0)"] != 20 || sums["(5,0)"] != 10 {
		t.Errorf("GroupSum = %v", sums)
	}
}

func TestSquareFtArea(t *testing.T) {
	if SquareFtArea(geom.V(1.2, 3.9, 0)) != (AreaID{X: 1, Y: 3}) {
		t.Error("positive coordinates wrong")
	}
	if SquareFtArea(geom.V(-0.1, 0, 0)) != (AreaID{X: -1, Y: 0}) {
		t.Error("negative coordinates should floor, not truncate")
	}
	if (AreaID{X: 2, Y: -3}).String() != "(2,-3)" {
		t.Error("AreaID string wrong")
	}
}

func TestLocationUpdateQuery(t *testing.T) {
	q := NewLocationUpdateQuery(0.5)
	updates := q.Run([]stream.Event{
		ev(1, "a", 0, 0),   // first report: update
		ev(2, "a", 0.1, 0), // below threshold: no update
		ev(3, "a", 2, 0),   // moved: update
		ev(4, "b", 1, 1),   // first report of b: update
	})
	if len(updates) != 3 {
		t.Fatalf("updates = %v", updates)
	}
	if updates[0].HasPrev {
		t.Error("first report should have no previous location")
	}
	if !updates[1].HasPrev || updates[1].Prev != geom.V(0, 0, 0) {
		t.Errorf("second update previous = %+v", updates[1])
	}
	if updates[2].Tag != "b" {
		t.Error("third update should be for tag b")
	}
}

func TestLocationUpdateQueryZeroThresholdEmitsAllChanges(t *testing.T) {
	q := NewLocationUpdateQuery(0)
	updates := q.Run([]stream.Event{
		ev(1, "a", 0, 0),
		ev(2, "a", 0, 0), // identical location: distance 0 <= 0, suppressed
		ev(3, "a", 0.001, 0),
	})
	if len(updates) != 2 {
		t.Fatalf("updates = %d, want 2", len(updates))
	}
}

func TestFireCodeQueryDetectsViolation(t *testing.T) {
	// Five 60-pound objects in the same square foot exceed 200 pounds; two do
	// not.
	q := NewFireCodeQuery(FireCodeConfig{
		WindowEpochs:    5,
		ThresholdPounds: 200,
		Weight:          func(stream.TagID) float64 { return 60 },
	})
	var events []stream.Event
	for i := 0; i < 5; i++ {
		events = append(events, ev(1, string(rune('a'+i)), 2.5, 3.5))
	}
	events = append(events, ev(1, "far1", 9.5, 9.5), ev(1, "far2", 9.2, 9.8))
	// A second epoch so the Rstream of epoch 1 is evaluated.
	events = append(events, ev(2, "a", 2.5, 3.5))
	violations := q.Run(events)
	if len(violations) == 0 {
		t.Fatal("expected at least one violation")
	}
	for _, v := range violations {
		if v.Area != (AreaID{X: 2, Y: 3}) {
			t.Errorf("violation in unexpected area %v", v.Area)
		}
		if v.TotalWeight < 300-1e-9 {
			t.Errorf("violation weight = %v, want 300", v.TotalWeight)
		}
	}
}

func TestFireCodeQueryCountsLatestLocationPerTag(t *testing.T) {
	// An object that moved must not be double counted in its old and new
	// areas within the same window.
	q := NewFireCodeQuery(FireCodeConfig{
		WindowEpochs:    10,
		ThresholdPounds: 100,
		Weight:          func(stream.TagID) float64 { return 150 },
	})
	events := []stream.Event{
		ev(1, "a", 0.5, 0.5),
		ev(2, "a", 5.5, 5.5), // moved to a different area
		ev(3, "b", 9.9, 9.9),
	}
	violations := q.Run(events)
	for _, v := range violations {
		if v.Area == (AreaID{X: 0, Y: 0}) && v.Time >= 2 {
			t.Errorf("stale location still counted after the object moved: %+v", v)
		}
	}
}

func TestFireCodeQueryWindowExpires(t *testing.T) {
	q := NewFireCodeQuery(FireCodeConfig{
		WindowEpochs:    2,
		ThresholdPounds: 100,
		Weight:          func(stream.TagID) float64 { return 150 },
	})
	events := []stream.Event{
		ev(1, "a", 0.5, 0.5),
		ev(10, "b", 9.5, 9.5), // far later; a's event has left the window
	}
	violations := q.Run(events)
	for _, v := range violations {
		if v.Time >= 10 && v.Area == (AreaID{X: 0, Y: 0}) {
			t.Errorf("expired event still triggering violations: %+v", v)
		}
	}
}

func TestFireCodeDefaults(t *testing.T) {
	q := NewFireCodeQuery(FireCodeConfig{})
	if q.cfg.WindowEpochs != 5 || q.cfg.ThresholdPounds != 200 {
		t.Errorf("defaults not applied: %+v", q.cfg)
	}
	if q.cfg.Weight("x") != 1 {
		t.Error("default weight should be 1")
	}
	if got := q.Flush(); got != nil {
		t.Error("flush before any events should be nil")
	}
}
