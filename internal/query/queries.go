package query

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/stream"
)

// LocationUpdate is one output row of the location-update query of Section
// II-B:
//
//	Select Istream(E.tag_id, E.(x, y, z))
//	From   EventStream E [Partition By tag_id Rows 1]
//
// An update is emitted whenever the most recent location report of an object
// differs from its previous one.
type LocationUpdate struct {
	Time int          `json:"time"`
	Tag  stream.TagID `json:"tag"`
	Loc  geom.Vec3    `json:"loc"`
	// Prev is the previous reported location; HasPrev is false for the first
	// report of a tag (which is also emitted, since the partition's content
	// changed from empty).
	Prev    geom.Vec3 `json:"prev"`
	HasPrev bool      `json:"has_prev"`
}

// LocationUpdateQuery evaluates the location-update query in a streaming
// fashion.
type LocationUpdateQuery struct {
	// MinChange suppresses updates whose location moved less than this
	// distance (zero emits every change, exactly like Istream semantics over
	// real-valued locations).
	MinChange float64

	window *RowWindow
	last   map[stream.TagID]geom.Vec3
}

// NewLocationUpdateQuery returns a streaming location-update query.
func NewLocationUpdateQuery(minChange float64) *LocationUpdateQuery {
	return &LocationUpdateQuery{
		MinChange: minChange,
		window:    NewRowWindow(1),
		last:      make(map[stream.TagID]geom.Vec3),
	}
}

// Push feeds one event and returns the update it produced, if any.
func (q *LocationUpdateQuery) Push(ev stream.Event) (LocationUpdate, bool) {
	prev, hasPrev := q.last[ev.Tag]
	q.window.Push(ev)
	if hasPrev && prev.Dist(ev.Loc) <= q.MinChange {
		return LocationUpdate{}, false
	}
	q.last[ev.Tag] = ev.Loc
	return LocationUpdate{
		Time:    ev.Time,
		Tag:     ev.Tag,
		Loc:     ev.Loc,
		Prev:    prev,
		HasPrev: hasPrev,
	}, true
}

// Run evaluates the query over a complete event stream.
func (q *LocationUpdateQuery) Run(events []stream.Event) []LocationUpdate {
	var out []LocationUpdate
	for _, ev := range events {
		if u, ok := q.Push(ev); ok {
			out = append(out, u)
		}
	}
	return out
}

// AreaID identifies one square-foot cell of the storage area.
type AreaID struct {
	X int `json:"x"`
	Y int `json:"y"`
}

// String implements fmt.Stringer.
func (a AreaID) String() string { return fmt.Sprintf("(%d,%d)", a.X, a.Y) }

// SquareFtArea maps a location to the square-foot area containing it, the
// SquareFtArea() function of the fire-code query.
func SquareFtArea(loc geom.Vec3) AreaID {
	return AreaID{X: int(math.Floor(loc.X)), Y: int(math.Floor(loc.Y))}
}

// Violation is one output row of the fire-code query: a square-foot area
// whose total object weight exceeded the threshold within the window.
type Violation struct {
	Time        int     `json:"time"`
	Area        AreaID  `json:"area"`
	TotalWeight float64 `json:"total_weight"`
}

// FireCodeConfig configures the fire-code query of Section II-B:
//
//	Select Rstream(E2.area, sum(E2.weight))
//	From (Select Rstream(*, SquareFtArea(E.(x,y,z)) As area,
//	                        Weight(E.tag_id) As weight)
//	      From EventStream E [Now]) E2 [Range 5 seconds]
//	Group By E2.area
//	Having sum(E2.weight) > 200 pounds
type FireCodeConfig struct {
	// WindowEpochs is the range window length in epochs (default 5).
	WindowEpochs int
	// ThresholdPounds is the Having threshold (default 200).
	ThresholdPounds float64
	// Weight returns the weight in pounds of an object; the default assigns
	// one pound to every object.
	Weight func(stream.TagID) float64
	// Area maps a location to its area cell; the default is SquareFtArea.
	Area func(geom.Vec3) AreaID
}

func (c *FireCodeConfig) applyDefaults() {
	if c.WindowEpochs <= 0 {
		c.WindowEpochs = 5
	}
	if c.ThresholdPounds <= 0 {
		c.ThresholdPounds = 200
	}
	if c.Weight == nil {
		c.Weight = func(stream.TagID) float64 { return 1 }
	}
	if c.Area == nil {
		c.Area = SquareFtArea
	}
}

// FireCodeQuery evaluates the fire-code query in a streaming fashion. Each
// pushed event advances the range window; the Rstream of the grouped,
// filtered relation is emitted per epoch.
type FireCodeQuery struct {
	cfg      FireCodeConfig
	window   *TimeWindow
	lastTime int
	started  bool
}

// NewFireCodeQuery returns a streaming fire-code query.
func NewFireCodeQuery(cfg FireCodeConfig) *FireCodeQuery {
	cfg.applyDefaults()
	return &FireCodeQuery{cfg: cfg, window: NewTimeWindow(cfg.WindowEpochs)}
}

// Push feeds one event and returns the violations present in the window after
// the event's epoch is complete. To match Rstream-per-epoch semantics the
// violations are computed when the epoch advances, so pushes within the same
// epoch return results for the previous epoch.
func (q *FireCodeQuery) Push(ev stream.Event) []Violation {
	var out []Violation
	if q.started && ev.Time != q.lastTime {
		out = q.evaluate(q.lastTime)
	}
	q.window.Push(ev)
	q.lastTime = ev.Time
	q.started = true
	return out
}

// Flush evaluates the final epoch after the stream ends.
func (q *FireCodeQuery) Flush() []Violation {
	if !q.started {
		return nil
	}
	return q.evaluate(q.lastTime)
}

func (q *FireCodeQuery) evaluate(now int) []Violation {
	q.window.AdvanceTo(now)
	// Only the latest event per tag inside the window contributes: an object
	// is in one place at a time.
	latest := make(map[stream.TagID]stream.Event)
	for _, ev := range q.window.Contents() {
		cur, ok := latest[ev.Tag]
		if !ok || ev.Time >= cur.Time {
			latest[ev.Tag] = ev
		}
	}
	dedup := make([]stream.Event, 0, len(latest))
	for _, ev := range latest {
		dedup = append(dedup, ev)
	}
	sums := GroupSum(dedup,
		func(ev stream.Event) string { return q.cfg.Area(ev.Loc).String() },
		func(ev stream.Event) float64 { return q.cfg.Weight(ev.Tag) },
	)
	areas := make(map[string]AreaID)
	for _, ev := range dedup {
		a := q.cfg.Area(ev.Loc)
		areas[a.String()] = a
	}
	var out []Violation
	for key, total := range sums {
		if total > q.cfg.ThresholdPounds {
			out = append(out, Violation{Time: now, Area: areas[key], TotalWeight: total})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Area.X != out[j].Area.X {
			return out[i].Area.X < out[j].Area.X
		}
		return out[i].Area.Y < out[j].Area.Y
	})
	return out
}

// Run evaluates the query over a complete event stream, returning all
// violations in time order.
func (q *FireCodeQuery) Run(events []stream.Event) []Violation {
	sorted := make([]stream.Event, len(events))
	copy(sorted, events)
	stream.ByTimeThenTag(sorted)
	var out []Violation
	for _, ev := range sorted {
		out = append(out, q.Push(ev)...)
	}
	out = append(out, q.Flush()...)
	return out
}
