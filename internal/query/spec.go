package query

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// ParseSpec decodes a JSON query spec and validates it. It is the single
// entry point for untrusted spec bytes (the serving layer's POST /queries
// body) and the surface the FuzzParseSpec target hardens: a spec that
// ParseSpec accepts is guaranteed to instantiate via NewContinuous.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	if err := json.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("query: bad spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}
