package query

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/geom"
	"repro/internal/stream"
)

// The registry's checkpoint codec. A checkpoint captures the registration
// table (ids, specs, sequence counters), every query's undelivered result
// rows (as their canonical JSON, so polled bytes after recovery are identical
// to an uninterrupted run's) and each live query's window state, so windowed
// aggregates resume mid-window without double- or under-reporting.

const registrySection = "query.Registry"

// stateful is implemented by the continuous-query adapters whose operators
// carry cross-event window state.
type stateful interface {
	saveState(e *checkpoint.Encoder)
	restoreState(d *checkpoint.Decoder) error
}

// SaveState appends the registry's full state to the encoder.
func (r *Registry) SaveState(e *checkpoint.Encoder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e.Section(registrySection)
	e.Int(r.nextID)
	ids := make([]string, 0, len(r.queries))
	for id := range r.queries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	e.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		reg := r.queries[id]
		e.String(id)
		spec, _ := json.Marshal(reg.info.Spec)
		e.String(string(spec))
		e.Bool(reg.info.Finished)
		e.Int(reg.info.NextSeq)
		e.Int(reg.info.Dropped)
		live := reg.live()
		e.Uvarint(uint64(len(live)))
		for _, res := range live {
			e.Int(res.Seq)
			row, err := json.Marshal(res.Row)
			if err != nil {
				row = []byte("null")
			}
			e.String(string(row))
		}
		if !reg.info.Finished {
			reg.q.(stateful).saveState(e)
		}
	}
}

// RestoreState rebuilds the registry from a SaveState payload, replacing any
// current registrations. Corrupt input errors, never panics.
func (r *Registry) RestoreState(d *checkpoint.Decoder) error {
	d.Section(registrySection)
	nextID := d.Int()
	n := d.SliceLen(1)
	queries := make(map[string]*registered, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		id := d.String()
		spec, err := ParseSpec([]byte(d.String()))
		if d.Err() != nil {
			break
		}
		if err != nil {
			return fmt.Errorf("query: restore %q: %w", id, err)
		}
		q, err := NewContinuous(spec)
		if err != nil {
			return fmt.Errorf("query: restore %q: %w", id, err)
		}
		reg := &registered{info: Info{ID: id, Spec: spec}, q: q}
		reg.info.Finished = d.Bool()
		reg.info.NextSeq = d.Int()
		reg.info.Dropped = d.Int()
		m := d.SliceLen(2)
		for j := 0; j < m && d.Err() == nil; j++ {
			seq := d.Int()
			row := d.String()
			if d.Err() == nil {
				// Keep the canonical JSON verbatim: re-marshaling a
				// RawMessage emits exactly these bytes, so post-recovery
				// polls are byte-identical to an uninterrupted run's.
				reg.results = append(reg.results, Result{Seq: seq, Row: json.RawMessage(row)})
			}
		}
		reg.info.Buffered = len(reg.results)
		if !reg.info.Finished {
			if err := reg.q.(stateful).restoreState(d); err != nil {
				return err
			}
		}
		if d.Err() == nil {
			if _, dup := queries[id]; dup {
				return fmt.Errorf("query: duplicate query id %q in checkpoint", id)
			}
			queries[id] = reg
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID = nextID
	r.queries = queries
	return nil
}

// --- event and window codecs ---

func saveEvent(e *checkpoint.Encoder, ev stream.Event) {
	e.Int(ev.Time)
	e.String(string(ev.Tag))
	e.Vec3(ev.Loc)
	e.Vec3(ev.Stats.Variance)
	e.Int(ev.Stats.NumParticles)
	e.Bool(ev.Stats.Compressed)
}

func restoreEvent(d *checkpoint.Decoder) stream.Event {
	return stream.Event{
		Time: d.Int(),
		Tag:  stream.TagID(d.String()),
		Loc:  d.Vec3(),
		Stats: stream.EventStats{
			Variance:     d.Vec3(),
			NumParticles: d.Int(),
			Compressed:   d.Bool(),
		},
	}
}

func saveEvents(e *checkpoint.Encoder, evs []stream.Event) {
	e.Uvarint(uint64(len(evs)))
	for _, ev := range evs {
		saveEvent(e, ev)
	}
}

func restoreEvents(d *checkpoint.Decoder) []stream.Event {
	n := d.SliceLen(8)
	if n == 0 {
		return nil
	}
	out := make([]stream.Event, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, restoreEvent(d))
	}
	return out
}

// saveState / restoreState on TimeWindow serialize the retained events (the
// range length is configuration, reconstructed from the spec).
func (w *TimeWindow) saveState(e *checkpoint.Encoder) { saveEvents(e, w.events) }

func (w *TimeWindow) restoreState(d *checkpoint.Decoder) error {
	w.events = restoreEvents(d)
	return d.Err()
}

// saveState / restoreState on RowWindow serialize the per-tag rows in sorted
// tag order.
func (w *RowWindow) saveState(e *checkpoint.Encoder) {
	tags := w.Tags()
	e.Uvarint(uint64(len(tags)))
	for _, tag := range tags {
		e.String(string(tag))
		saveEvents(e, w.byID[tag])
	}
}

func (w *RowWindow) restoreState(d *checkpoint.Decoder) error {
	n := d.SliceLen(2)
	byID := make(map[stream.TagID][]stream.Event, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		tag := stream.TagID(d.String())
		byID[tag] = restoreEvents(d)
	}
	if err := d.Err(); err != nil {
		return err
	}
	w.byID = byID
	return nil
}

// --- adapter state ---

func (a locationAdapter) saveState(e *checkpoint.Encoder) {
	e.Section("q.location")
	a.q.window.saveState(e)
	tags := make([]stream.TagID, 0, len(a.q.last))
	for tag := range a.q.last {
		tags = append(tags, tag)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	e.Uvarint(uint64(len(tags)))
	for _, tag := range tags {
		e.String(string(tag))
		e.Vec3(a.q.last[tag])
	}
}

func (a locationAdapter) restoreState(d *checkpoint.Decoder) error {
	d.Section("q.location")
	if err := a.q.window.restoreState(d); err != nil {
		return err
	}
	n := d.SliceLen(8 * 3)
	last := make(map[stream.TagID]geom.Vec3, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		tag := stream.TagID(d.String())
		last[tag] = d.Vec3()
	}
	if err := d.Err(); err != nil {
		return err
	}
	a.q.last = last
	return nil
}

func (a fireCodeAdapter) saveState(e *checkpoint.Encoder) {
	e.Section("q.firecode")
	a.q.window.saveState(e)
	e.Int(a.q.lastTime)
	e.Bool(a.q.started)
}

func (a fireCodeAdapter) restoreState(d *checkpoint.Decoder) error {
	d.Section("q.firecode")
	if err := a.q.window.restoreState(d); err != nil {
		return err
	}
	a.q.lastTime = d.Int()
	a.q.started = d.Bool()
	return d.Err()
}

func (a aggregateAdapter) saveState(e *checkpoint.Encoder) {
	e.Section("q.aggregate")
	a.q.window.saveState(e)
	e.Int(a.q.lastTime)
	e.Bool(a.q.started)
}

func (a aggregateAdapter) restoreState(d *checkpoint.Decoder) error {
	d.Section("q.aggregate")
	if err := a.q.window.restoreState(d); err != nil {
		return err
	}
	a.q.lastTime = d.Int()
	a.q.started = d.Bool()
	return d.Err()
}
