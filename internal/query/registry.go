package query

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/stream"
)

// Kind names a continuous-query type the registry can instantiate.
type Kind string

// Registered query kinds.
const (
	// KindLocationUpdates is the per-object location-update query.
	KindLocationUpdates Kind = "location-updates"
	// KindFireCode is the fire-code weight-density query.
	KindFireCode Kind = "fire-code"
	// KindWindowedAggregate is the generalized windowed aggregate query.
	KindWindowedAggregate Kind = "windowed-aggregate"
)

// Mode selects how a registered query is evaluated.
const (
	// ModeContinuous (the default, also spelled "") evaluates the query
	// incrementally over the live clean event stream.
	ModeContinuous = "continuous"
	// ModeHistory evaluates the query once, at registration time, over the
	// bounded per-epoch history of sealed MAP location estimates the engine
	// retains (the time-travel read path). The query is finished immediately;
	// its rows are polled like any other query's but it is never fed again.
	ModeHistory = "history"
)

// Spec is the declarative, JSON-serializable description of a continuous
// query; the serving layer's POST /queries body is exactly this shape. Only
// the fields of the selected Kind are consulted.
type Spec struct {
	Kind Kind `json:"kind"`

	// Mode selects live-stream ("continuous", the default) or time-travel
	// ("history") evaluation.
	Mode string `json:"mode,omitempty"`
	// FromEpoch and ToEpoch bound a history-mode query's epoch range,
	// clamped to the retained history; ToEpoch == 0 means "through the newest
	// sealed epoch".
	FromEpoch int `json:"from_epoch,omitempty"`
	ToEpoch   int `json:"to_epoch,omitempty"`

	// MinChange (location-updates): suppress updates that moved at most this
	// many feet.
	MinChange float64 `json:"min_change,omitempty"`

	// WindowEpochs (fire-code, windowed-aggregate): range window length in
	// epochs (default 5).
	WindowEpochs int `json:"window_epochs,omitempty"`
	// ThresholdPounds (fire-code): the Having threshold (default 200).
	ThresholdPounds float64 `json:"threshold_pounds,omitempty"`
	// WeightPounds (fire-code, windowed-aggregate): uniform per-object
	// weight in pounds (default 1).
	WeightPounds float64 `json:"weight_pounds,omitempty"`

	// Op (windowed-aggregate): aggregation function (default "count").
	Op AggregateOp `json:"op,omitempty"`
	// GroupBy (windowed-aggregate): grouping key (default "none").
	GroupBy GroupKey `json:"group_by,omitempty"`
}

// Validate reports whether the spec describes an instantiable query.
func (s Spec) Validate() error {
	switch s.Mode {
	case "", ModeContinuous, ModeHistory:
	default:
		return fmt.Errorf("query: unknown mode %q (want %s or %s)", s.Mode, ModeContinuous, ModeHistory)
	}
	if s.Mode == ModeHistory && s.ToEpoch != 0 && s.ToEpoch < s.FromEpoch {
		return fmt.Errorf("query: history range [%d, %d] is empty", s.FromEpoch, s.ToEpoch)
	}
	switch s.Kind {
	case KindLocationUpdates, KindFireCode:
		return nil
	case KindWindowedAggregate:
		return AggregateConfig{Op: s.Op, GroupBy: s.GroupBy}.Validate()
	default:
		return fmt.Errorf("query: unknown kind %q (want %s, %s or %s)",
			s.Kind, KindLocationUpdates, KindFireCode, KindWindowedAggregate)
	}
}

// IsHistory reports whether the spec selects time-travel evaluation.
func (s Spec) IsHistory() bool { return s.Mode == ModeHistory }

// Continuous is the streaming interface the registry drives: one event in,
// zero or more result rows out, plus a flush for the final partial epoch.
// The concrete row type depends on the query kind (LocationUpdate, Violation
// or AggregateRow).
type Continuous interface {
	// PushEvent feeds one clean event (events must arrive in time order).
	PushEvent(ev stream.Event) []any
	// FlushFinal evaluates whatever the query was holding back for the
	// still-open epoch (windowed queries emit an epoch's rows only once a
	// later epoch begins).
	FlushFinal() []any
}

// NewContinuous instantiates the streaming query a spec describes.
func NewContinuous(s Spec) (Continuous, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	weight := func(stream.TagID) float64 { return 1 }
	if s.WeightPounds > 0 {
		w := s.WeightPounds
		weight = func(stream.TagID) float64 { return w }
	}
	switch s.Kind {
	case KindLocationUpdates:
		return locationAdapter{NewLocationUpdateQuery(s.MinChange)}, nil
	case KindFireCode:
		return fireCodeAdapter{NewFireCodeQuery(FireCodeConfig{
			WindowEpochs:    s.WindowEpochs,
			ThresholdPounds: s.ThresholdPounds,
			Weight:          weight,
		})}, nil
	case KindWindowedAggregate:
		return aggregateAdapter{NewWindowedAggregateQuery(AggregateConfig{
			WindowEpochs: s.WindowEpochs,
			Op:           s.Op,
			GroupBy:      s.GroupBy,
			Weight:       weight,
		})}, nil
	}
	return nil, fmt.Errorf("query: unknown kind %q", s.Kind)
}

// locationAdapter lifts LocationUpdateQuery to the Continuous interface.
type locationAdapter struct{ q *LocationUpdateQuery }

// PushEvent implements Continuous.
func (a locationAdapter) PushEvent(ev stream.Event) []any {
	if u, ok := a.q.Push(ev); ok {
		return []any{u}
	}
	return nil
}

// FlushFinal implements Continuous; location updates are emitted eagerly so
// there is nothing to flush.
func (a locationAdapter) FlushFinal() []any { return nil }

// fireCodeAdapter lifts FireCodeQuery to the Continuous interface.
type fireCodeAdapter struct{ q *FireCodeQuery }

// PushEvent implements Continuous.
func (a fireCodeAdapter) PushEvent(ev stream.Event) []any { return wrapRows(a.q.Push(ev)) }

// FlushFinal implements Continuous.
func (a fireCodeAdapter) FlushFinal() []any { return wrapRows(a.q.Flush()) }

// aggregateAdapter lifts WindowedAggregateQuery to the Continuous interface.
type aggregateAdapter struct{ q *WindowedAggregateQuery }

// PushEvent implements Continuous.
func (a aggregateAdapter) PushEvent(ev stream.Event) []any { return wrapRows(a.q.Push(ev)) }

// FlushFinal implements Continuous.
func (a aggregateAdapter) FlushFinal() []any { return wrapRows(a.q.Flush()) }

// wrapRows boxes a concrete row slice into []any.
func wrapRows[T any](rows []T) []any {
	if len(rows) == 0 {
		return nil
	}
	out := make([]any, len(rows))
	for i, r := range rows {
		out[i] = r
	}
	return out
}

// Result is one buffered result row of a registered query. Seq numbers are
// per query, start at 0 and never repeat, so clients poll with
// "give me everything after seq N".
type Result struct {
	Seq int `json:"seq"`
	Row any `json:"row"`
}

// Info describes a registered query.
type Info struct {
	ID   string `json:"id"`
	Spec Spec   `json:"spec"`
	// NextSeq is the sequence number the next result will get (equivalently:
	// the number of results produced so far).
	NextSeq int `json:"next_seq"`
	// Buffered is the number of results currently held for polling.
	Buffered int `json:"buffered"`
	// Dropped is the number of old results evicted because the buffer was
	// full before the client polled them.
	Dropped int `json:"dropped"`
	// Finished reports that the query will produce no further rows (history
	// queries finish at registration; continuous queries never do).
	Finished bool `json:"finished,omitempty"`
}

// registered is one live query plus its result buffer.
type registered struct {
	info Info
	q    Continuous
	// results[start:] holds the most recent rows; start advances as old rows
	// are evicted and the slice is compacted only once start exceeds the
	// cap, so eviction is amortized O(1) per row.
	results []Result
	start   int
}

// live returns the non-evicted result window.
func (reg *registered) live() []Result { return reg.results[reg.start:] }

// HistorySource supplies the bounded per-epoch history of sealed MAP
// location estimates that history-mode queries evaluate over. It is
// implemented by rfid.Runner; the serving layer wires it in with
// SetHistorySource.
type HistorySource interface {
	// HistoryBounds returns the oldest and newest retained epochs; ok is
	// false while no epoch has been recorded (or history is disabled).
	HistoryBounds() (oldest, newest int, ok bool)
	// HistoryEvents returns the per-object location events recorded at the
	// given sealed epoch, in tag order; ok is false outside the retained
	// window.
	HistoryEvents(epoch int) ([]stream.Event, bool)
}

// Registry owns the set of registered continuous queries and drives them
// incrementally: the serving layer feeds each epoch's clean events once, and
// every registered query sees them in order. Registration, feeding and
// result polling are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	nextID  int
	queries map[string]*registered
	// idPrefix prefixes assigned ids ("q" by default). A replica's local
	// history-query registry uses a distinct prefix so its ephemeral ids can
	// never collide with the replicated primary-assigned ones.
	idPrefix string
	// maxBuffered caps each query's result buffer; oldest rows are evicted
	// first.
	maxBuffered int
	// history serves ModeHistory registrations; nil rejects them.
	history HistorySource
}

// SetIDPrefix changes the prefix of newly assigned query ids (default "q").
// Call before the first Register.
func (r *Registry) SetIDPrefix(p string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.idPrefix = p
}

// SetHistorySource installs the provider history-mode queries evaluate over.
func (r *Registry) SetHistorySource(src HistorySource) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.history = src
}

// DefaultMaxBufferedResults is the per-query result-buffer cap used when
// NewRegistry is given a non-positive limit.
const DefaultMaxBufferedResults = 4096

// NewRegistry returns an empty registry whose queries each buffer at most
// maxBuffered undelivered results (0 selects DefaultMaxBufferedResults;
// negative disables the cap, for batch evaluation over a finite stream).
func NewRegistry(maxBuffered int) *Registry {
	if maxBuffered == 0 {
		maxBuffered = DefaultMaxBufferedResults
	}
	return &Registry{queries: make(map[string]*registered), maxBuffered: maxBuffered}
}

// Register instantiates the query a spec describes and assigns it an id. A
// continuous-mode query is fed from the next Feed call on; a history-mode
// query is evaluated right here over the retained epoch history — the same
// query operator, run over the stored past instead of the live stream — and
// registered already finished, with its rows buffered for polling.
func (r *Registry) Register(spec Spec) (Info, error) {
	q, err := NewContinuous(spec)
	if err != nil {
		return Info{}, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	prefix := r.idPrefix
	if prefix == "" {
		prefix = "q"
	}
	id := fmt.Sprintf("%s%d", prefix, r.nextID)
	reg := &registered{info: Info{ID: id, Spec: spec}, q: q}
	if spec.IsHistory() {
		rows, err := r.evaluateHistory(q, spec)
		if err != nil {
			r.nextID-- // the id was never exposed
			return Info{}, err
		}
		reg.info.Finished = true
		r.queries[id] = reg
		r.buffer(reg, rows)
		return reg.info, nil
	}
	r.queries[id] = reg
	return reg.info, nil
}

// evaluateHistory runs a query operator over the retained epoch history,
// clamped to the spec's [FromEpoch, ToEpoch] range. Caller holds r.mu.
func (r *Registry) evaluateHistory(q Continuous, spec Spec) ([]any, error) {
	if r.history == nil {
		return nil, fmt.Errorf("query: history-mode queries are not available (no history source)")
	}
	oldest, newest, ok := r.history.HistoryBounds()
	if !ok {
		return nil, fmt.Errorf("query: no epoch history retained yet")
	}
	from, to := spec.FromEpoch, spec.ToEpoch
	if to == 0 || to > newest {
		to = newest
	}
	if from < oldest {
		from = oldest
	}
	if from > to {
		return nil, fmt.Errorf("query: history range [%d, %d] is outside the retained epochs [%d, %d]",
			spec.FromEpoch, spec.ToEpoch, oldest, newest)
	}
	var rows []any
	for ep := from; ep <= to; ep++ {
		events, ok := r.history.HistoryEvents(ep)
		if !ok {
			continue // epoch evicted between bounds check and read
		}
		for _, ev := range events {
			rows = append(rows, q.PushEvent(ev)...)
		}
	}
	rows = append(rows, q.FlushFinal()...)
	return rows, nil
}

// Unregister removes a query; false when the id is unknown.
func (r *Registry) Unregister(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.queries[id]
	delete(r.queries, id)
	return ok
}

// Count returns the number of registered queries without materializing their
// descriptions (the allocation-free companion to List for counters and
// resource views).
func (r *Registry) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.queries)
}

// List returns the registered queries sorted by id.
func (r *Registry) List() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, 0, len(r.queries))
	for _, reg := range r.queries {
		out = append(out, reg.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Feed pushes a batch of clean events (which must be in time order, as the
// engine emits them) through every registered query and buffers the produced
// rows. It returns the total number of new rows.
func (r *Registry) Feed(events []stream.Event) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ev := range events {
		for _, reg := range r.queries {
			if reg.info.Finished {
				continue
			}
			n += r.buffer(reg, reg.q.PushEvent(ev))
		}
	}
	return n
}

// FlushAll tells every query the stream ended, buffering the rows held back
// for the final epoch. The registry remains usable afterwards, but windowed
// queries may double-report the flushed epoch if feeding resumes.
func (r *Registry) FlushAll() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, reg := range r.queries {
		if reg.info.Finished {
			continue
		}
		n += r.buffer(reg, reg.q.FlushFinal())
	}
	return n
}

// buffer appends rows to a query's result buffer, evicting the oldest rows
// beyond the cap by advancing the start offset (the backing slice is
// compacted only once the dead prefix exceeds the cap, so eviction costs
// amortized O(1) per row). Caller holds r.mu.
func (r *Registry) buffer(reg *registered, rows []any) int {
	for _, row := range rows {
		reg.results = append(reg.results, Result{Seq: reg.info.NextSeq, Row: row})
		reg.info.NextSeq++
	}
	if r.maxBuffered > 0 {
		if over := len(reg.live()) - r.maxBuffered; over > 0 {
			reg.info.Dropped += over
			reg.start += over
		}
		if reg.start > r.maxBuffered {
			reg.results = append([]Result(nil), reg.live()...)
			reg.start = 0
		}
	}
	reg.info.Buffered = len(reg.live())
	return len(rows)
}

// Results returns up to limit buffered results with Seq > afterSeq (limit
// <= 0 means no limit) together with the query's current info; the error is
// non-nil when the id is unknown. Results stay buffered until evicted by the
// cap, so polling is idempotent.
func (r *Registry) Results(id string, afterSeq, limit int) ([]Result, Info, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	reg, ok := r.queries[id]
	if !ok {
		return nil, Info{}, fmt.Errorf("query: unknown query id %q", id)
	}
	// Binary search: buffered seqs are contiguous and ascending.
	live := reg.live()
	idx := sort.Search(len(live), func(i int) bool { return live[i].Seq > afterSeq })
	out := live[idx:]
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return append([]Result(nil), out...), reg.info, nil
}
