package query

import (
	"testing"

	"repro/internal/stream"
)

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Spec{Kind: KindLocationUpdates}, true},
		{Spec{Kind: KindFireCode, WindowEpochs: 3}, true},
		{Spec{Kind: KindWindowedAggregate}, true},
		{Spec{Kind: KindWindowedAggregate, Op: AggSumWeight, GroupBy: GroupByArea}, true},
		{Spec{Kind: "bogus"}, false},
		{Spec{Kind: KindWindowedAggregate, Op: "median"}, false},
		{Spec{Kind: KindWindowedAggregate, GroupBy: "shelf"}, false},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.spec, err, c.ok)
		}
	}
}

func TestRegistryLifecycle(t *testing.T) {
	reg := NewRegistry(0)
	info, err := reg.Register(Spec{Kind: KindLocationUpdates, MinChange: 0.5})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if info.ID == "" {
		t.Fatal("empty query id")
	}
	if _, err := reg.Register(Spec{Kind: "bogus"}); err == nil {
		t.Fatal("registering a bogus spec succeeded")
	}
	if got := len(reg.List()); got != 1 {
		t.Fatalf("List has %d entries, want 1", got)
	}
	if !reg.Unregister(info.ID) {
		t.Fatal("Unregister of a live id failed")
	}
	if reg.Unregister(info.ID) {
		t.Fatal("Unregister of a dead id succeeded")
	}
}

func TestRegistryFeedAndPoll(t *testing.T) {
	reg := NewRegistry(0)
	loc, err := reg.Register(Spec{Kind: KindLocationUpdates})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}

	// Three events: a appears, b appears, a moves.
	reg.Feed([]stream.Event{ev(0, "a", 1, 1), ev(0, "b", 2, 2)})
	reg.Feed([]stream.Event{ev(1, "a", 5, 5)})

	results, info, err := reg.Results(loc.ID, -1, 0)
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d location updates, want 3", len(results))
	}
	if info.NextSeq != 3 {
		t.Errorf("NextSeq = %d, want 3", info.NextSeq)
	}
	// Polling is idempotent and seq-addressable.
	again, _, _ := reg.Results(loc.ID, results[1].Seq, 0)
	if len(again) != 1 {
		t.Fatalf("poll after seq %d returned %d rows, want 1", results[1].Seq, len(again))
	}
	u, ok := again[0].Row.(LocationUpdate)
	if !ok {
		t.Fatalf("row type %T, want LocationUpdate", again[0].Row)
	}
	if u.Tag != "a" || !u.HasPrev {
		t.Errorf("unexpected final update: %+v", u)
	}

	if _, _, err := reg.Results("q999", -1, 0); err == nil {
		t.Fatal("Results for an unknown id succeeded")
	}
}

func TestRegistryBufferEviction(t *testing.T) {
	reg := NewRegistry(2)
	info, _ := reg.Register(Spec{Kind: KindLocationUpdates})
	// Every event moves the tag, so every event is a result row.
	reg.Feed([]stream.Event{ev(0, "a", 0, 0), ev(1, "a", 1, 0), ev(2, "a", 2, 0), ev(3, "a", 3, 0)})
	results, got, err := reg.Results(info.ID, -1, 0)
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("buffer holds %d rows, want 2 (cap)", len(results))
	}
	if got.Dropped != 2 {
		t.Errorf("Dropped = %d, want 2", got.Dropped)
	}
	if results[0].Seq != 2 {
		t.Errorf("oldest surviving seq = %d, want 2", results[0].Seq)
	}
}

func TestRegistryUncapped(t *testing.T) {
	reg := NewRegistry(-1)
	info, _ := reg.Register(Spec{Kind: KindLocationUpdates})
	var events []stream.Event
	for i := 0; i < 3*DefaultMaxBufferedResults; i++ {
		events = append(events, ev(i, "a", float64(i), 0))
	}
	reg.Feed(events)
	results, got, err := reg.Results(info.ID, -1, 0)
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	if len(results) != len(events) || got.Dropped != 0 {
		t.Fatalf("uncapped registry kept %d of %d rows (dropped %d)", len(results), len(events), got.Dropped)
	}
}

func TestRegistryFireCodeIncremental(t *testing.T) {
	reg := NewRegistry(0)
	fc, _ := reg.Register(Spec{Kind: KindFireCode, WindowEpochs: 5, ThresholdPounds: 100, WeightPounds: 60})

	// Two 60-lb objects in the same square foot: 120 > 100.
	reg.Feed([]stream.Event{ev(0, "a", 0.2, 0.2), ev(0, "b", 0.6, 0.7)})
	// The epoch-0 violation is emitted when epoch 1 begins.
	reg.Feed([]stream.Event{ev(1, "a", 0.2, 0.2)})

	results, _, err := reg.Results(fc.ID, -1, 0)
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d violations, want 1", len(results))
	}
	v := results[0].Row.(Violation)
	if v.TotalWeight != 120 || v.Area != (AreaID{0, 0}) {
		t.Errorf("unexpected violation: %+v", v)
	}

	// FlushAll surfaces the held-back final epoch.
	if n := reg.FlushAll(); n == 0 {
		t.Fatal("FlushAll produced no rows for the open epoch")
	}
}

func TestWindowedAggregateCountByArea(t *testing.T) {
	q := NewWindowedAggregateQuery(AggregateConfig{
		WindowEpochs: 2,
		Op:           AggCount,
		GroupBy:      GroupByArea,
	})
	rows := q.Run([]stream.Event{
		ev(0, "a", 0.5, 0.5),
		ev(0, "b", 0.6, 0.6),
		ev(0, "c", 3.5, 0.5),
		ev(1, "a", 0.5, 0.5),
	})
	// Epoch 0: area (0,0) count 2, area (3,0) count 1.
	// Epoch 1 (flush): same window contents, latest-a only moved in time.
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4: %+v", len(rows), rows)
	}
	if rows[0].Area != (AreaID{0, 0}) || rows[0].Value != 2 || !rows[0].Grouped {
		t.Errorf("epoch-0 first row: %+v", rows[0])
	}
	if rows[1].Area != (AreaID{3, 0}) || rows[1].Value != 1 {
		t.Errorf("epoch-0 second row: %+v", rows[1])
	}
}

func TestWindowedAggregateMeanWeightUngrouped(t *testing.T) {
	weights := map[stream.TagID]float64{"a": 10, "b": 30}
	q := NewWindowedAggregateQuery(AggregateConfig{
		WindowEpochs: 5,
		Op:           AggMeanWeight,
		GroupBy:      GroupByNone,
		Weight:       func(id stream.TagID) float64 { return weights[id] },
	})
	rows := q.Run([]stream.Event{ev(0, "a", 0, 0), ev(0, "b", 9, 9)})
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	if rows[0].Value != 20 || rows[0].Objects != 2 || rows[0].Grouped {
		t.Errorf("unexpected row: %+v", rows[0])
	}
}

func TestWindowedAggregateWindowExpiry(t *testing.T) {
	q := NewWindowedAggregateQuery(AggregateConfig{WindowEpochs: 1, Op: AggCount})
	rows := q.Run([]stream.Event{
		ev(0, "a", 0, 0),
		ev(5, "b", 1, 1), // a's epoch-0 event fell out of the window by t=5
	})
	last := rows[len(rows)-1]
	if last.Time != 5 || last.Value != 1 {
		t.Errorf("final row %+v, want count 1 at t=5", last)
	}
}
