package query

import (
	"encoding/json"
	"testing"
)

// FuzzParseSpec hardens the untrusted-input surface of the query layer: the
// JSON spec bytes a client POSTs to /queries. Three properties must hold for
// arbitrary input: ParseSpec never panics; any spec it accepts must
// instantiate through NewContinuous (parse acceptance implies
// instantiability); and accepted specs must survive a marshal/re-parse
// round trip unchanged (so persisted or relayed specs mean the same query).
func FuzzParseSpec(f *testing.F) {
	// Seed corpus: every canned spec shape the tools and tests use, plus
	// near-miss malformed variants.
	seeds := []string{
		`{"kind":"location-updates"}`,
		`{"kind":"location-updates","min_change":0.5}`,
		`{"kind":"fire-code"}`,
		`{"kind":"fire-code","window_epochs":5,"threshold_pounds":200,"weight_pounds":60}`,
		`{"kind":"windowed-aggregate","op":"count","group_by":"area"}`,
		`{"kind":"windowed-aggregate","op":"sum-weight","group_by":"none","window_epochs":10,"weight_pounds":2}`,
		`{"kind":"windowed-aggregate","op":"mean-weight"}`,
		`{"kind":"unknown"}`,
		`{"kind":""}`,
		`{}`,
		`[]`,
		`{"kind":"fire-code","window_epochs":-3}`,
		`{"kind":"windowed-aggregate","op":"bogus"}`,
		`{"kind":"location-updates","min_change":1e308}`,
		`not json at all`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data)
		if err != nil {
			return
		}
		q, err := NewContinuous(spec)
		if err != nil {
			t.Fatalf("ParseSpec accepted %q but NewContinuous rejected it: %v", data, err)
		}
		if q == nil {
			t.Fatalf("NewContinuous returned nil query for accepted spec %q", data)
		}
		buf, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("marshal of accepted spec failed: %v", err)
		}
		again, err := ParseSpec(buf)
		if err != nil {
			t.Fatalf("re-parse of marshaled spec %s failed: %v", buf, err)
		}
		if again != spec {
			t.Fatalf("spec round trip changed: %+v -> %+v", spec, again)
		}
	})
}
