package query

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/stream"
)

// AggregateOp names the aggregation function of a windowed aggregate query.
type AggregateOp string

// Supported aggregation functions.
const (
	// AggCount counts the distinct objects in the window
	// (count(distinct tag_id) — e.g. live inventory visibility per area).
	AggCount AggregateOp = "count"
	// AggSumWeight sums Weight(tag_id) over the distinct objects in the
	// window (the fire-code aggregate, without the Having filter).
	AggSumWeight AggregateOp = "sum-weight"
	// AggMeanWeight averages Weight(tag_id) over the distinct objects in the
	// window.
	AggMeanWeight AggregateOp = "mean-weight"
)

// GroupKey names the Group By clause of a windowed aggregate query.
type GroupKey string

// Supported groupings.
const (
	// GroupByNone aggregates over the whole event stream (one row per
	// epoch).
	GroupByNone GroupKey = "none"
	// GroupByArea groups by the square-foot area containing each object's
	// latest location (one row per occupied area per epoch).
	GroupByArea GroupKey = "area"
)

// AggregateConfig configures a windowed aggregate query, the CQL shape
//
//	Select Rstream(E2.group, agg(E2))
//	From (Select Rstream(*, SquareFtArea(E.(x,y,z)) As area,
//	                        Weight(E.tag_id) As weight)
//	      From EventStream E [Now]) E2 [Range W seconds]
//	Group By E2.group
//
// generalizing the paper's fire-code query to arbitrary aggregates without a
// Having threshold.
type AggregateConfig struct {
	// WindowEpochs is the range window length in epochs (default 5).
	WindowEpochs int
	// Op selects the aggregation function (default AggCount).
	Op AggregateOp
	// GroupBy selects the grouping (default GroupByNone).
	GroupBy GroupKey
	// Weight returns the weight of an object for the weight aggregates; the
	// default assigns one pound to every object.
	Weight func(stream.TagID) float64
	// Area maps a location to its grouping cell when GroupBy is GroupByArea;
	// the default is SquareFtArea.
	Area func(geom.Vec3) AreaID
}

func (c *AggregateConfig) applyDefaults() {
	if c.WindowEpochs <= 0 {
		c.WindowEpochs = 5
	}
	if c.Op == "" {
		c.Op = AggCount
	}
	if c.GroupBy == "" {
		c.GroupBy = GroupByNone
	}
	if c.Weight == nil {
		c.Weight = func(stream.TagID) float64 { return 1 }
	}
	if c.Area == nil {
		c.Area = SquareFtArea
	}
}

// Validate reports whether the configuration names a supported aggregate and
// grouping.
func (c AggregateConfig) Validate() error {
	switch c.Op {
	case "", AggCount, AggSumWeight, AggMeanWeight:
	default:
		return fmt.Errorf("query: unknown aggregate op %q", c.Op)
	}
	switch c.GroupBy {
	case "", GroupByNone, GroupByArea:
	default:
		return fmt.Errorf("query: unknown group key %q", c.GroupBy)
	}
	return nil
}

// AggregateRow is one output row of a windowed aggregate query: the
// aggregate value for one group at one epoch.
type AggregateRow struct {
	Time int `json:"time"`
	// Area is the grouping cell; meaningful only under GroupByArea.
	Area AreaID `json:"area"`
	// Grouped reports whether Area carries a value.
	Grouped bool `json:"grouped"`
	// Value is the aggregate (a count for AggCount, pounds for the weight
	// aggregates).
	Value float64 `json:"value"`
	// Objects is the number of distinct objects contributing to the group.
	Objects int `json:"objects"`
}

// WindowedAggregateQuery evaluates a windowed aggregate in a streaming
// fashion: per epoch, it emits one row per group computed over the distinct
// objects (latest event per tag) inside the range window.
type WindowedAggregateQuery struct {
	cfg      AggregateConfig
	window   *TimeWindow
	lastTime int
	started  bool
}

// NewWindowedAggregateQuery returns a streaming windowed aggregate query.
func NewWindowedAggregateQuery(cfg AggregateConfig) *WindowedAggregateQuery {
	cfg.applyDefaults()
	return &WindowedAggregateQuery{cfg: cfg, window: NewTimeWindow(cfg.WindowEpochs)}
}

// Push feeds one event; like FireCodeQuery, results for an epoch are emitted
// once a later epoch's first event arrives (Rstream-per-epoch semantics).
func (q *WindowedAggregateQuery) Push(ev stream.Event) []AggregateRow {
	var out []AggregateRow
	if q.started && ev.Time != q.lastTime {
		out = q.evaluate(q.lastTime)
	}
	q.window.Push(ev)
	q.lastTime = ev.Time
	q.started = true
	return out
}

// Flush evaluates the final epoch after the stream ends.
func (q *WindowedAggregateQuery) Flush() []AggregateRow {
	if !q.started {
		return nil
	}
	return q.evaluate(q.lastTime)
}

// Run evaluates the query over a complete event stream in time order.
func (q *WindowedAggregateQuery) Run(events []stream.Event) []AggregateRow {
	sorted := make([]stream.Event, len(events))
	copy(sorted, events)
	stream.ByTimeThenTag(sorted)
	var out []AggregateRow
	for _, ev := range sorted {
		out = append(out, q.Push(ev)...)
	}
	return append(out, q.Flush()...)
}

func (q *WindowedAggregateQuery) evaluate(now int) []AggregateRow {
	q.window.AdvanceTo(now)
	// Distinct objects: only the latest event per tag contributes.
	latest := make(map[stream.TagID]stream.Event)
	for _, ev := range q.window.Contents() {
		cur, ok := latest[ev.Tag]
		if !ok || ev.Time >= cur.Time {
			latest[ev.Tag] = ev
		}
	}
	type group struct {
		area    AreaID
		sum     float64
		objects int
	}
	groups := make(map[AreaID]*group)
	for _, ev := range latest {
		var a AreaID
		if q.cfg.GroupBy == GroupByArea {
			a = q.cfg.Area(ev.Loc)
		}
		g, ok := groups[a]
		if !ok {
			g = &group{area: a}
			groups[a] = g
		}
		g.sum += q.cfg.Weight(ev.Tag)
		g.objects++
	}
	out := make([]AggregateRow, 0, len(groups))
	for _, g := range groups {
		row := AggregateRow{
			Time:    now,
			Area:    g.area,
			Grouped: q.cfg.GroupBy == GroupByArea,
			Objects: g.objects,
		}
		switch q.cfg.Op {
		case AggCount:
			row.Value = float64(g.objects)
		case AggSumWeight:
			row.Value = g.sum
		case AggMeanWeight:
			row.Value = g.sum / float64(g.objects)
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Area.X != out[j].Area.X {
			return out[i].Area.X < out[j].Area.X
		}
		return out[i].Area.Y < out[j].Area.Y
	})
	return out
}
