// Package model defines the probabilistic data-generation model of Section
// III: the description of the physical world (shelves, shelf tags, objects),
// the reader motion model, the reader location sensing model, the object
// location model and the parametric sensor model, combined into the dynamic
// Bayesian network of Fig. 1.
package model

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/sensor"
	"repro/internal/stream"
)

// Shelf is one fixed shelf in the storage area. Objects rest somewhere within
// the shelf's region.
type Shelf struct {
	ID     string
	Region geom.BBox
}

// Contains reports whether a point lies on the shelf.
func (s Shelf) Contains(p geom.Vec3) bool { return s.Region.Contains(p) }

// World describes the static part of the physical environment: the shelves
// and the shelf tags whose exact locations are known a priori. Object tag
// locations are unknown and are what inference estimates.
type World struct {
	Shelves []Shelf
	// ShelfTags maps a shelf tag id to its known, fixed location S_i.
	ShelfTags map[stream.TagID]geom.Vec3

	// Caches maintained by AddShelf/AddShelfTag so the per-epoch hot paths
	// (shelf-tag weighting, uniform relocation) do not rebuild them on every
	// call. Build worlds through AddShelf/AddShelfTag: staleness from direct
	// mutation is detected by length only, so adding or removing entries
	// directly makes the accessors recompute on the fly (correct, just
	// slower, never mutating the world — safe for concurrent readers), but
	// replacing an existing shelf or tag in place without going through the
	// Add methods leaves the caches stale.
	sortedTagIDs []stream.TagID
	shelfWeights []float64
}

// NewWorld returns an empty world.
func NewWorld() *World {
	return &World{ShelfTags: make(map[stream.TagID]geom.Vec3)}
}

// AddShelf appends a shelf to the world.
func (w *World) AddShelf(s Shelf) {
	w.Shelves = append(w.Shelves, s)
	w.shelfWeights = shelfVolumeWeights(w.Shelves)
}

// AddShelfTag registers a shelf tag with a known location.
func (w *World) AddShelfTag(id stream.TagID, loc geom.Vec3) {
	if w.ShelfTags == nil {
		w.ShelfTags = make(map[stream.TagID]geom.Vec3)
	}
	w.ShelfTags[id] = loc
	w.sortedTagIDs = sortedShelfTagIDs(w.ShelfTags)
}

// IsShelfTag reports whether the id belongs to a shelf tag.
func (w *World) IsShelfTag(id stream.TagID) bool {
	_, ok := w.ShelfTags[id]
	return ok
}

// ShelfTagIDs returns the shelf tag ids in deterministic (sorted) order. The
// returned slice is a world-owned cache that callers must treat as read-only;
// it is rebuilt by AddShelfTag, so the per-epoch shelf-tag weighting pass
// reads it without allocating.
func (w *World) ShelfTagIDs() []stream.TagID {
	if len(w.sortedTagIDs) == len(w.ShelfTags) {
		return w.sortedTagIDs
	}
	// ShelfTags was mutated directly; recompute without touching the cache
	// (the world may be shared by concurrent readers).
	return sortedShelfTagIDs(w.ShelfTags)
}

// sortedShelfTagIDs returns the map keys in sorted order.
func sortedShelfTagIDs(tags map[stream.TagID]geom.Vec3) []stream.TagID {
	out := make([]stream.TagID, 0, len(tags))
	for id := range tags {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ShelfBBox returns the union of all shelf regions. It bounds the area where
// objects can legally be located and is used both by the object location
// model (uniform relocation across shelves) and by the uniform baseline.
func (w *World) ShelfBBox() geom.BBox {
	b := geom.EmptyBBox()
	for _, s := range w.Shelves {
		b = b.Union(s.Region)
	}
	return b
}

// UniformOnShelves draws a point uniformly at random across the shelf
// regions, weighting each shelf by its volume (or area for flat shelves).
// The shelf weights come from a cache maintained by AddShelf, so the object
// relocation proposal draws without allocating.
func (w *World) UniformOnShelves(src *rng.Source) geom.Vec3 {
	if len(w.Shelves) == 0 {
		return geom.Vec3{}
	}
	weights := w.shelfWeights
	if len(weights) != len(w.Shelves) {
		// Shelves was mutated directly; recompute without touching the cache.
		weights = shelfVolumeWeights(w.Shelves)
	}
	idx := src.Categorical(weights)
	return src.UniformInBox(w.Shelves[idx].Region)
}

// shelfVolumeWeights computes the per-shelf selection weights for
// UniformOnShelves: the shelf volume, or the largest face area for
// degenerate (flat or linear) shelves so they are still selectable.
func shelfVolumeWeights(shelves []Shelf) []float64 {
	weights := make([]float64, len(shelves))
	for i, s := range shelves {
		v := s.Region.Volume()
		if v <= 0 {
			sz := s.Region.Size()
			v = sz.X*sz.Y + sz.Y*sz.Z + sz.X*sz.Z
			if v <= 0 {
				v = 1
			}
		}
		weights[i] = v
	}
	return weights
}

// NearestShelf returns the shelf whose region center is closest to p, or
// false when the world has no shelves.
func (w *World) NearestShelf(p geom.Vec3) (Shelf, bool) {
	if len(w.Shelves) == 0 {
		return Shelf{}, false
	}
	best := 0
	bestD := p.Dist(w.Shelves[0].Region.Center())
	for i := 1; i < len(w.Shelves); i++ {
		d := p.Dist(w.Shelves[i].Region.Center())
		if d < bestD {
			best, bestD = i, d
		}
	}
	return w.Shelves[best], true
}

// ClampToShelves projects p onto the nearest shelf region; points already on
// a shelf are returned unchanged. This keeps particle hypotheses physically
// plausible.
func (w *World) ClampToShelves(p geom.Vec3) geom.Vec3 {
	for _, s := range w.Shelves {
		if s.Contains(p) {
			return p
		}
	}
	sh, ok := w.NearestShelf(p)
	if !ok {
		return p
	}
	r := sh.Region
	return geom.Vec3{
		X: geom.Clamp(p.X, r.Min.X, r.Max.X),
		Y: geom.Clamp(p.Y, r.Min.Y, r.Max.Y),
		Z: geom.Clamp(p.Z, r.Min.Z, r.Max.Z),
	}
}

// Validate checks the world for obvious configuration errors.
func (w *World) Validate() error {
	if len(w.Shelves) == 0 {
		return fmt.Errorf("model: world has no shelves")
	}
	seen := make(map[string]bool, len(w.Shelves))
	for _, s := range w.Shelves {
		if s.Region.IsEmpty() {
			return fmt.Errorf("model: shelf %q has an empty region", s.ID)
		}
		if seen[s.ID] {
			return fmt.Errorf("model: duplicate shelf id %q", s.ID)
		}
		seen[s.ID] = true
	}
	for id, loc := range w.ShelfTags {
		if !loc.IsFinite() {
			return fmt.Errorf("model: shelf tag %q has a non-finite location", id)
		}
	}
	return nil
}

// Params bundles all learned / configured parameters of the data-generation
// model: the sensor model coefficients, the reader motion model, the reader
// location sensing model and the object location model. This is exactly the
// parameter set that Section III-C estimates with EM.
type Params struct {
	Sensor  sensor.Model
	Motion  MotionModel
	Sensing LocationSensingModel
	Object  ObjectModel
}

// DefaultParams returns a sensible default parameter set for a robot-mounted
// reader that advances 0.1 ft per one-second epoch along the y axis.
func DefaultParams() Params {
	return Params{
		Sensor:  sensor.DefaultModel(),
		Motion:  MotionModel{Velocity: geom.Vec3{Y: 0.1}, Noise: geom.Vec3{X: 0.01, Y: 0.01, Z: 0.001}, PhiNoise: 0.005},
		Sensing: LocationSensingModel{Bias: geom.Vec3{}, Noise: geom.Vec3{X: 0.01, Y: 0.01, Z: 0.001}},
		Object:  ObjectModel{MoveProb: 1e-5},
	}
}
