package model

import (
	"testing"

	"repro/internal/geom"
)

// TestHoistedLocationSensingBitIdentical pins that hoisting the covariance
// terms out of the sensing likelihood changes no output bits — the property
// that lets the filters use the hoisted form on the byte-identical default
// path.
func TestHoistedLocationSensingBitIdentical(t *testing.T) {
	models := []LocationSensingModel{
		{Bias: geom.Vec3{X: 0.1, Y: -0.05}, Noise: geom.Vec3{X: 0.3, Y: 0.3, Z: 0.1}},
		{Noise: geom.Vec3{X: 1, Y: 2, Z: 3}},
		{Bias: geom.Vec3{Z: 0.5}, Noise: geom.Vec3{}}, // degenerate sigma hits the floor
	}
	poses := []geom.Pose{
		{},
		{Pos: geom.Vec3{X: 3.7, Y: -1.2, Z: 0.9}, Phi: 1.1},
		{Pos: geom.Vec3{X: -10, Y: 4, Z: 2}, Phi: -2.7},
	}
	reports := []geom.Vec3{{}, {X: 3.5, Y: -1, Z: 1}, {X: 100, Y: -50, Z: 3}}
	for _, m := range models {
		h := m.Hoist()
		for _, p := range poses {
			for _, r := range reports {
				want := m.LogProb(p, r)
				got := h.LogProb(p, r)
				if got != want {
					t.Fatalf("Hoist().LogProb(%v, %v) = %v, want bit-identical %v", p, r, got, want)
				}
			}
		}
	}
}
