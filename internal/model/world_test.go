package model

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

func twoShelfWorld() *World {
	w := NewWorld()
	w.AddShelf(Shelf{ID: "a", Region: geom.NewBBox(geom.V(0, 0, 0), geom.V(1, 10, 0))})
	w.AddShelf(Shelf{ID: "b", Region: geom.NewBBox(geom.V(5, 0, 0), geom.V(6, 10, 0))})
	w.AddShelfTag("s1", geom.V(0, 2, 0))
	w.AddShelfTag("s2", geom.V(0, 8, 0))
	return w
}

func TestWorldShelfTagBookkeeping(t *testing.T) {
	w := twoShelfWorld()
	if !w.IsShelfTag("s1") || w.IsShelfTag("other") {
		t.Error("IsShelfTag misbehaves")
	}
	ids := w.ShelfTagIDs()
	if len(ids) != 2 || ids[0] != "s1" || ids[1] != "s2" {
		t.Errorf("ShelfTagIDs = %v", ids)
	}
	// AddShelfTag on a world created without the map must not panic.
	var zero World
	zero.AddShelfTag("x", geom.V(1, 1, 1))
	if !zero.IsShelfTag("x") {
		t.Error("AddShelfTag on zero-value world failed")
	}
}

func TestWorldShelfBBox(t *testing.T) {
	w := twoShelfWorld()
	box := w.ShelfBBox()
	if !box.Contains(geom.V(0.5, 5, 0)) || !box.Contains(geom.V(5.5, 5, 0)) {
		t.Error("shelf bbox does not cover the shelves")
	}
	if NewWorld().ShelfBBox().IsEmpty() == false {
		t.Error("empty world should have an empty shelf bbox")
	}
}

func TestUniformOnShelvesStaysOnShelves(t *testing.T) {
	w := twoShelfWorld()
	src := rng.New(3)
	onA, onB := 0, 0
	for i := 0; i < 2000; i++ {
		p := w.UniformOnShelves(src)
		switch {
		case w.Shelves[0].Contains(p):
			onA++
		case w.Shelves[1].Contains(p):
			onB++
		default:
			t.Fatalf("sample %v is on no shelf", p)
		}
	}
	// The two shelves have equal area so samples should split roughly evenly.
	if onA < 800 || onB < 800 {
		t.Errorf("uneven shelf sampling: %d vs %d", onA, onB)
	}
	if (NewWorld()).UniformOnShelves(src) != (geom.Vec3{}) {
		t.Error("empty world should return the origin")
	}
}

func TestNearestShelfAndClamp(t *testing.T) {
	w := twoShelfWorld()
	sh, ok := w.NearestShelf(geom.V(5.6, 1, 0))
	if !ok || sh.ID != "b" {
		t.Errorf("NearestShelf = %v", sh.ID)
	}
	// A point already on a shelf is unchanged.
	p := geom.V(0.5, 5, 0)
	if w.ClampToShelves(p) != p {
		t.Error("on-shelf point was moved")
	}
	// A point in the aisle is clamped onto the closest shelf region.
	clamped := w.ClampToShelves(geom.V(2, 5, 0))
	if !w.Shelves[0].Contains(clamped) && !w.Shelves[1].Contains(clamped) {
		t.Errorf("clamped point %v is on no shelf", clamped)
	}
	if _, ok := NewWorld().NearestShelf(p); ok {
		t.Error("empty world should have no nearest shelf")
	}
}

func TestWorldValidate(t *testing.T) {
	w := twoShelfWorld()
	if err := w.Validate(); err != nil {
		t.Errorf("valid world rejected: %v", err)
	}
	if err := NewWorld().Validate(); err == nil {
		t.Error("world without shelves should be invalid")
	}
	dup := NewWorld()
	dup.AddShelf(Shelf{ID: "x", Region: geom.NewBBox(geom.V(0, 0, 0), geom.V(1, 1, 0))})
	dup.AddShelf(Shelf{ID: "x", Region: geom.NewBBox(geom.V(2, 0, 0), geom.V(3, 1, 0))})
	if err := dup.Validate(); err == nil {
		t.Error("duplicate shelf ids should be invalid")
	}
	empty := NewWorld()
	empty.AddShelf(Shelf{ID: "e", Region: geom.EmptyBBox()})
	if err := empty.Validate(); err == nil {
		t.Error("empty shelf region should be invalid")
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.Sensor.MaxRange <= 0 {
		t.Error("default sensor has no range")
	}
	if p.Motion.Velocity.Y <= 0 {
		t.Error("default motion model should move along +y")
	}
	if p.Object.MoveProb <= 0 || p.Object.MoveProb > 0.01 {
		t.Errorf("default object move probability = %v", p.Object.MoveProb)
	}
}
