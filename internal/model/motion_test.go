package model

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

func TestMotionModelSampleMoments(t *testing.T) {
	m := MotionModel{Velocity: geom.V(0, 0.1, 0), Noise: geom.V(0.01, 0.02, 0), PhiNoise: 0.01}
	src := rng.New(5)
	prev := geom.P(0, 0, 0, 0)
	n := 5000
	var sumY, sumYSq float64
	for i := 0; i < n; i++ {
		next := m.Sample(prev, src)
		dy := next.Pos.Y - prev.Pos.Y
		sumY += dy
		sumYSq += dy * dy
	}
	mean := sumY / float64(n)
	sd := math.Sqrt(sumYSq/float64(n) - mean*mean)
	if math.Abs(mean-0.1) > 0.005 {
		t.Errorf("mean displacement = %v, want ~0.1", mean)
	}
	if math.Abs(sd-0.02) > 0.005 {
		t.Errorf("displacement std = %v, want ~0.02", sd)
	}
}

func TestMotionModelLogProb(t *testing.T) {
	m := MotionModel{Velocity: geom.V(0, 0.1, 0), Noise: geom.V(0.01, 0.01, 0.01), PhiNoise: 0.01}
	prev := geom.P(0, 0, 0, 0)
	expected := geom.P(0, 0.1, 0, 0)
	off := geom.P(0, 0.5, 0, 0)
	if m.LogProb(prev, expected) <= m.LogProb(prev, off) {
		t.Error("expected displacement should be more likely than a large jump")
	}
}

func TestMotionModelWithVelocity(t *testing.T) {
	m := MotionModel{Velocity: geom.V(0, 0.1, 0), Noise: geom.V(0.01, 0.01, 0)}
	v := geom.V(0, -0.2, 0)
	m2 := m.WithVelocity(v)
	if m2.Velocity != v {
		t.Error("WithVelocity did not replace the velocity")
	}
	if m.Velocity.Y != 0.1 {
		t.Error("WithVelocity mutated the receiver")
	}
	if m2.Noise != m.Noise {
		t.Error("WithVelocity changed the noise")
	}
}

func TestLocationSensingModel(t *testing.T) {
	s := LocationSensingModel{Bias: geom.V(0, 0.5, 0), Noise: geom.V(0.05, 0.05, 0.01)}
	src := rng.New(7)
	truePose := geom.P(1, 2, 0, 0)
	n := 5000
	var sum geom.Vec3
	for i := 0; i < n; i++ {
		sum = sum.Add(s.Sample(truePose, src))
	}
	mean := sum.Scale(1 / float64(n))
	if math.Abs(mean.Y-2.5) > 0.01 {
		t.Errorf("mean reported y = %v, want ~2.5 (true + bias)", mean.Y)
	}
	// The true location plus the bias is the most likely report.
	if s.LogProb(truePose, geom.V(1, 2.5, 0)) <= s.LogProb(truePose, geom.V(1, 2.0, 0)) {
		t.Error("biased report should be more likely than the unbiased one")
	}
}

func TestObjectModelSample(t *testing.T) {
	w := twoShelfWorld()
	src := rng.New(9)
	stay := ObjectModel{MoveProb: 0}
	loc := geom.V(0.5, 5, 0)
	for i := 0; i < 100; i++ {
		if stay.Sample(loc, w, src) != loc {
			t.Fatal("object with MoveProb=0 moved")
		}
	}
	always := ObjectModel{MoveProb: 1}
	moved := 0
	for i := 0; i < 200; i++ {
		next := always.Sample(loc, w, src)
		if next != loc {
			moved++
			// New locations must lie on a shelf.
			if !w.Shelves[0].Contains(next) && !w.Shelves[1].Contains(next) {
				t.Fatalf("relocated object is off-shelf: %v", next)
			}
		}
	}
	if moved < 190 {
		t.Errorf("object with MoveProb=1 moved only %d/200 times", moved)
	}
	// Without a world the object stays put even when it "moves".
	if always.Sample(loc, nil, src) != loc {
		t.Error("object moved with no world to move within")
	}
}
