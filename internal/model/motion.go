package model

import (
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/stats"
)

// MotionModel is the reader motion model of Section III-A: the reader moves
// with a roughly constant velocity, so the new location is the old location
// plus the average velocity Delta plus Gaussian noise with diagonal
// covariance Sigma_m. Heading evolves with small Gaussian noise as well.
//
//	R_t = R_{t-1} + Delta + eps,   eps ~ N(0, Sigma_m)
type MotionModel struct {
	// Velocity is the average per-epoch displacement Delta.
	Velocity geom.Vec3
	// Noise is the per-axis standard deviation of the motion noise
	// (the square root of the diagonal of Sigma_m).
	Noise geom.Vec3
	// PhiNoise is the standard deviation of the per-epoch heading change.
	PhiNoise float64
	// PhiVelocity is the average per-epoch heading change (zero for a reader
	// moving in a straight line).
	PhiVelocity float64
}

// WithVelocity returns a copy of the motion model whose average displacement
// is replaced by v. The paper models the reader as moving with "a constant
// velocity that varies somewhat over time"; the filters realize the varying
// part by substituting the displacement observed between consecutive reported
// locations, falling back to the learned average when no reports arrive.
func (m MotionModel) WithVelocity(v geom.Vec3) MotionModel {
	m.Velocity = v
	return m
}

// Sample draws the next reader pose given the previous pose.
func (m MotionModel) Sample(prev geom.Pose, src *rng.Source) geom.Pose {
	noise := src.NormalVec(geom.Vec3{}, m.Noise)
	next := geom.Pose{
		Pos: prev.Pos.Add(m.Velocity).Add(noise),
		Phi: geom.NormalizeAngle(prev.Phi + m.PhiVelocity + src.Normal(0, m.PhiNoise)),
	}
	return next
}

// LogProb returns log p(next | prev) under the motion model. The heading term
// is included only when PhiNoise is positive.
func (m MotionModel) LogProb(prev, next geom.Pose) float64 {
	mean := prev.Pos.Add(m.Velocity)
	g := stats.DiagGaussian3{Mu: mean, Sigma: m.Noise}
	lp := g.LogPDF(next.Pos)
	if m.PhiNoise > 0 {
		dphi := geom.NormalizeAngle(next.Phi - prev.Phi - m.PhiVelocity)
		lp += stats.Gaussian1D{Mu: 0, Sigma: m.PhiNoise}.LogPDF(dphi)
	}
	return lp
}

// LocationSensingModel is the reader location sensing model of Section III-A:
// the reported reader location equals the true location plus Gaussian noise
// with mean mu_s (systematic bias, e.g. dead-reckoning drift) and diagonal
// covariance Sigma_s.
//
//	R̂_t = R_t + b,   b ~ N(mu_s, Sigma_s)
type LocationSensingModel struct {
	// Bias is the systematic error mu_s.
	Bias geom.Vec3
	// Noise is the per-axis standard deviation (square root of the diagonal
	// of Sigma_s).
	Noise geom.Vec3
}

// Sample draws a reported location given the true pose.
func (m LocationSensingModel) Sample(truePose geom.Pose, src *rng.Source) geom.Vec3 {
	return truePose.Pos.Add(m.Bias).Add(src.NormalVec(geom.Vec3{}, m.Noise))
}

// LogProb returns log p(reported | true pose).
func (m LocationSensingModel) LogProb(truePose geom.Pose, reported geom.Vec3) float64 {
	g := stats.DiagGaussian3{Mu: truePose.Pos.Add(m.Bias), Sigma: m.Noise}
	return g.LogPDF(reported)
}

// HoistedLocationSensing is LocationSensingModel with the covariance-
// dependent terms of the log density (sigma floors and log-sigma) hoisted.
// The filters evaluate this likelihood once per reader particle per epoch
// against one fixed Sigma_s; hoisting moves the three math.Log calls out of
// that loop. LogProb is bit-identical to LocationSensingModel.LogProb.
type HoistedLocationSensing struct {
	bias geom.Vec3
	g    stats.HoistedDiagGaussian3
}

// Hoist precomputes the covariance terms of the sensing likelihood.
func (m LocationSensingModel) Hoist() HoistedLocationSensing {
	return HoistedLocationSensing{bias: m.Bias, g: stats.HoistDiagGaussian3(m.Noise)}
}

// LogProb returns log p(reported | true pose).
func (h HoistedLocationSensing) LogProb(truePose geom.Pose, reported geom.Vec3) float64 {
	return h.g.LogPDFAt(truePose.Pos.Add(h.bias), reported)
}

// ObjectModel is the object location model of Section III-A: objects are
// stationary but change location with probability MoveProb per epoch, in
// which case the new location is uniform across all shelves. The model is
// used as the proposal for object particles; the new location is ultimately
// pinned down by subsequent readings.
type ObjectModel struct {
	// MoveProb is the per-epoch probability alpha that an object moves.
	MoveProb float64
}

// Sample draws the object's next location given its previous location.
func (m ObjectModel) Sample(prev geom.Vec3, w *World, src *rng.Source) geom.Vec3 {
	if m.MoveProb > 0 && src.Bernoulli(m.MoveProb) && w != nil && len(w.Shelves) > 0 {
		return w.UniformOnShelves(src)
	}
	return prev
}
