package rfid_test

import (
	"testing"

	"repro/rfid"
)

// benchRunnerEpochs drives one full simulated trace through a Runner per
// iteration. The traced/untraced pair quantifies the epoch-stage tracing
// overhead (the acceptance bar is <= 1% on wall time):
//
//	go test -run '^$' -bench 'BenchmarkRunner(Untraced|Traced)$' -count 5 ./rfid
func benchRunnerEpochs(b *testing.B, traceEpochs int) {
	simCfg := rfid.DefaultWarehouseConfig()
	simCfg.NumObjects = 10
	simCfg.NumShelfTags = 4
	simCfg.Seed = 17
	trace, err := rfid.SimulateWarehouse(simCfg)
	if err != nil {
		b.Fatalf("SimulateWarehouse: %v", err)
	}
	readings, locations := rfid.RawStreams(trace)
	cfg := rfid.DefaultConfig(rfid.DefaultParams(), trace.World)
	cfg.NumObjectParticles = 200
	cfg.NumReaderParticles = 50
	cfg.Seed = 17
	cfg.ReportPolicy = rfid.ReportEveryEpoch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner, err := rfid.NewRunner(cfg, rfid.RunnerConfig{TraceEpochs: traceEpochs})
		if err != nil {
			b.Fatalf("NewRunner: %v", err)
		}
		runner.Ingest(readings, locations)
		if _, err := runner.Flush(); err != nil {
			b.Fatalf("Flush: %v", err)
		}
	}
}

func BenchmarkRunnerUntraced(b *testing.B) { benchRunnerEpochs(b, 0) }
func BenchmarkRunnerTraced(b *testing.B)   { benchRunnerEpochs(b, 64) }
