package rfid

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/stream"
)

// RunnerConfig tunes the continuous driving behavior of a Runner on top of
// the engine Config.
type RunnerConfig struct {
	// HoldEpochs is the lateness slack: an epoch t is sealed and processed
	// only once the ingest watermark (the largest epoch time seen so far)
	// reaches t + HoldEpochs. Zero processes an epoch as soon as any data
	// for it has arrived — right when each ingest batch carries whole
	// epochs; use one or more when a single epoch's readings may be split
	// across batches.
	HoldEpochs int
	// Sharded selects the sharded parallel engine even when Config.Workers
	// is zero or one (zero then means one worker per CPU), exactly like
	// NewShardedPipeline; serving deployments want this.
	Sharded bool
	// HistoryEpochs, when positive, keeps a bounded ring of per-epoch MAP
	// location snapshots: after each sealed epoch the runner records every
	// tracked object's posterior-mean location, retaining the newest
	// HistoryEpochs epochs. The ring backs time-travel reads (HistoryEvents,
	// the serving layer's GET /snapshot?epoch=N and history-mode queries) and
	// rides along in checkpoints. Zero disables history — and its per-epoch
	// estimate cost — entirely.
	HistoryEpochs int
	// TraceEpochs, when positive, enables epoch-stage tracing: the runner
	// creates a TraceRecorder retaining the last TraceEpochs sealed epochs
	// and threads it through the engine, timing decode, prologue, step,
	// estimate and seal for every epoch (the serving layer adds query-eval
	// and WAL-append). Zero disables tracing entirely — the kill switch; the
	// record path is allocation-free and tracing never changes output.
	TraceEpochs int
}

// RunnerStats extends the engine's work counters with the continuous
// driver's own bookkeeping.
type RunnerStats struct {
	// Stats are the underlying engine's cumulative counters.
	Stats
	// Particles is the number of particles currently alive in the engine.
	Particles int
	// BufferedEpochs is the number of ingested epochs not yet processed.
	BufferedEpochs int
	// NextEpoch is the first epoch time that has not been processed yet.
	NextEpoch int
	// Watermark is the largest epoch time seen on ingest (-1 before any
	// data).
	Watermark int
	// LateDropped counts readings and location reports that arrived for an
	// already-processed epoch and were discarded.
	LateDropped int
}

// IngestReport summarizes one Ingest call.
type IngestReport struct {
	// Readings and Locations are the numbers of accepted records.
	Readings  int
	Locations int
	// LateDropped is the number of records discarded because their epoch was
	// already processed.
	LateDropped int
	// Watermark is the ingest watermark after the call.
	Watermark int
}

// Runner drives a Pipeline continuously: instead of consuming a fixed trace,
// it accepts raw readings and reader-location reports incrementally, buffers
// them into epochs, and processes each epoch once the ingest watermark has
// moved past it (external clocking — the data, not a wall clock, advances
// time). All methods are safe for concurrent use, so a serving layer can
// ingest batches and answer snapshot reads from different goroutines; epoch
// processing is serialized internally, which preserves the engine's
// deterministic, seed-reproducible behavior.
type Runner struct {
	mu     sync.Mutex
	pipe   *Pipeline
	sync   *stream.Synchronizer
	hold   int
	next   int // first epoch time not yet processed
	mark   int // ingest watermark (max epoch time seen); -1 before any data
	late   int // late records dropped
	closed bool

	// histCap bounds the epoch-snapshot ring; history is the ring itself, in
	// ascending epoch order with a dead prefix [0:histStart) compacted
	// lazily (same amortized-O(1) eviction the query result buffers use).
	histCap   int
	history   []epochSnapshot
	histStart int

	// rec is the epoch-stage recorder (nil when tracing is disabled).
	rec *TraceRecorder
}

// epochSnapshot is one retained time-travel entry: the MAP location of every
// tracked object right after the epoch was sealed, in tag order.
type epochSnapshot struct {
	epoch  int
	events []Event
}

// NewRunner builds a Runner around a new Pipeline for cfg (Config.Workers
// selects the sharded engine exactly as in NewPipeline).
func NewRunner(cfg Config, rc RunnerConfig) (*Runner, error) {
	var (
		pipe *Pipeline
		err  error
	)
	if rc.Sharded {
		pipe, err = NewShardedPipeline(cfg)
	} else {
		pipe, err = NewPipeline(cfg)
	}
	if err != nil {
		return nil, err
	}
	if rc.HoldEpochs < 0 {
		rc.HoldEpochs = 0
	}
	if rc.HistoryEpochs < 0 {
		rc.HistoryEpochs = 0
	}
	rec := NewTraceRecorder(rc.TraceEpochs)
	pipe.SetTraceRecorder(rec)
	return &Runner{
		pipe:    pipe,
		sync:    stream.NewSynchronizer(),
		hold:    rc.HoldEpochs,
		mark:    -1,
		histCap: rc.HistoryEpochs,
		rec:     rec,
	}, nil
}

// TraceRecorder returns the runner's epoch-stage recorder; nil (a valid,
// disabled recorder) when RunnerConfig.TraceEpochs was zero. The serving
// layer uses it to accrue the query-eval and WAL-append stages and to serve
// trace snapshots.
func (r *Runner) TraceRecorder() *TraceRecorder { return r.rec }

// Ingest buffers a batch of raw readings and location reports. Records for
// epochs that were already processed are dropped (and counted); everything
// else is merged into the pending epochs. Ingest never processes epochs —
// call Advance (or Flush) to run the engine over the sealed ones.
func (r *Runner) Ingest(readings []Reading, locations []LocationReport) IngestReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := IngestReport{}
	for _, rd := range readings {
		if r.closed || rd.Time < r.next {
			rep.LateDropped++
			continue
		}
		r.sync.AddReading(rd)
		rep.Readings++
		if rd.Time > r.mark {
			r.mark = rd.Time
		}
	}
	for _, l := range locations {
		if r.closed || l.Time < r.next {
			rep.LateDropped++
			continue
		}
		r.sync.AddLocation(l)
		rep.Locations++
		if l.Time > r.mark {
			r.mark = l.Time
		}
	}
	r.late += rep.LateDropped
	rep.Watermark = r.mark
	return rep
}

// Advance seals and processes every pending epoch the watermark has moved
// past (epoch t is sealed once watermark >= t + HoldEpochs) and returns the
// location events those epochs emitted, in time order.
func (r *Runner) Advance() ([]Event, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.mark < 0 {
		return nil, nil
	}
	return r.processUpTo(r.mark - r.hold)
}

// Flush processes every pending epoch regardless of the hold slack. It does
// not finalize the engine; ingest can continue afterwards (with anything
// older than the flushed epochs counting as late).
func (r *Runner) Flush() ([]Event, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.processUpTo(r.mark)
}

// processUpTo drains and runs the buffered epochs with time <= upTo. A
// failing epoch is skipped rather than aborting the loop — the epochs were
// already drained from the buffer, so stopping would silently lose the rest
// of the batch; the first error is returned alongside the events that did
// process. Caller holds r.mu.
func (r *Runner) processUpTo(upTo int) ([]Event, error) {
	var all []Event
	var firstErr error
	rec := r.rec
	if rec == nil {
		for _, ep := range r.sync.DrainUpTo(upTo) {
			events, err := r.pipe.ProcessEpoch(ep)
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("epoch %d: %w", ep.Time, err)
			}
			if ep.Time+1 > r.next {
				r.next = ep.Time + 1
			}
			r.recordHistory(ep.Time)
			all = append(all, events...)
		}
		return all, firstErr
	}

	// Traced variant: identical control flow plus timestamps. Decode covers
	// the drain (attributed to the first epoch of the batch); each epoch's
	// wall time spans ProcessEpoch through seal, and the seal stage covers
	// the history snapshot and watermark bookkeeping.
	t0 := time.Now()
	epochs := r.sync.DrainUpTo(upTo)
	if len(epochs) > 0 {
		rec.Add(TraceStageDecode, time.Since(t0))
	}
	for _, ep := range epochs {
		tEp := time.Now()
		events, err := r.pipe.ProcessEpoch(ep)
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("epoch %d: %w", ep.Time, err)
		}
		if ep.Time+1 > r.next {
			r.next = ep.Time + 1
		}
		tSeal := time.Now()
		r.recordHistory(ep.Time)
		rec.Add(TraceStageSeal, time.Since(tSeal))
		rec.Commit(ep.Time, time.Since(tEp))
		all = append(all, events...)
	}
	return all, firstErr
}

// recordHistory snapshots every tracked object's MAP location right after an
// epoch was sealed, appending to the bounded ring. Caller holds r.mu.
func (r *Runner) recordHistory(epoch int) {
	if r.histCap <= 0 {
		return
	}
	tags := r.pipe.TrackedObjects()
	snap := epochSnapshot{epoch: epoch, events: make([]Event, 0, len(tags))}
	sortTagIDs(tags)
	for _, id := range tags {
		loc, st, ok := r.pipe.Estimate(id)
		if !ok {
			continue
		}
		snap.events = append(snap.events, Event{Time: epoch, Tag: id, Loc: loc, Stats: st})
	}
	r.history = append(r.history, snap)
	if over := len(r.history) - r.histStart - r.histCap; over > 0 {
		r.histStart += over
	}
	if r.histStart > r.histCap {
		r.history = append([]epochSnapshot(nil), r.history[r.histStart:]...)
		r.histStart = 0
	}
}

// liveHistory returns the retained snapshots, oldest first. Caller holds
// r.mu.
func (r *Runner) liveHistory() []epochSnapshot { return r.history[r.histStart:] }

// HistoryBounds returns the oldest and newest retained history epochs; ok is
// false while no epoch has been recorded (or history is disabled). Together
// with HistoryEvents it implements query.HistorySource, so history-mode
// queries evaluate directly over the runner's ring.
func (r *Runner) HistoryBounds() (oldest, newest int, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	live := r.liveHistory()
	if len(live) == 0 {
		return 0, 0, false
	}
	return live[0].epoch, live[len(live)-1].epoch, true
}

// HistoryEvents returns the per-object MAP location events recorded when the
// given epoch was sealed, in tag order, or ok == false outside the retained
// window. The returned slice is shared immutable state; callers must not
// modify it.
func (r *Runner) HistoryEvents(epoch int) ([]Event, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	live := r.liveHistory()
	// Snapshots are appended in strictly increasing epoch order but need not
	// be contiguous (epochs with no data are never sealed); binary search.
	lo, hi := 0, len(live)
	for lo < hi {
		mid := (lo + hi) / 2
		if live[mid].epoch < epoch {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(live) && live[lo].epoch == epoch {
		return live[lo].events, true
	}
	return nil, false
}

// sortTagIDs sorts tag ids in place (insertion sort: history snapshots are
// small and mostly sorted already, since TrackedObjects is first-seen order).
func sortTagIDs(ids []TagID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// SealTo seals and processes every buffered epoch with time <= upTo,
// regardless of the watermark or hold slack. It is the replay primitive the
// durability layer uses: an explicit flush is logged with its horizon, and
// recovery re-drives the exact same seal through SealTo, keeping the
// recovered epoch sequence identical to the original run's.
func (r *Runner) SealTo(upTo int) ([]Event, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.processUpTo(upTo)
}

// Close flushes all pending epochs, emits the engine's final location events
// for every tracked object, and marks the runner closed (subsequent ingests
// are dropped as late). The returned slice contains the events of the
// flushed epochs followed by the final flush.
func (r *Runner) Close() ([]Event, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, nil
	}
	events, err := r.processUpTo(r.mark)
	if err != nil {
		return events, err
	}
	r.closed = true
	return append(events, r.pipe.Finish()...), nil
}

// Snapshot returns the engine's current location estimate for a tag. It is
// safe to call concurrently with Ingest/Advance; reads observe the state
// after the most recently completed epoch.
func (r *Runner) Snapshot(id TagID) (Vec3, EventStats, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pipe.Estimate(id)
}

// ReaderSnapshot returns the current estimate of the true reader pose.
func (r *Runner) ReaderSnapshot() Pose {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pipe.ReaderEstimate()
}

// Tracked returns the ids of all objects the engine has seen so far.
func (r *Runner) Tracked() []TagID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pipe.TrackedObjects()
}

// Stats returns the engine counters plus the driver's own bookkeeping.
func (r *Runner) Stats() RunnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RunnerStats{
		Stats:          r.pipe.Stats(),
		Particles:      r.pipe.Particles(),
		BufferedEpochs: r.sync.Pending(),
		NextEpoch:      r.next,
		Watermark:      r.mark,
		LateDropped:    r.late,
	}
}
