// Package rfid is the public API of the library: a probabilistic cleaning and
// transformation engine that turns the noisy, incomplete raw streams produced
// by mobile RFID readers into a clean, queriable event stream carrying object
// locations, as described in "Probabilistic Inference over RFID Streams in
// Mobile Environments" (Tran et al., ICDE 2009).
//
// The typical flow is:
//
//  1. Describe the environment (shelves and shelf tags with known locations)
//     with a World.
//  2. Calibrate the model parameters from a small training trace with
//     Calibrate, or start from DefaultParams.
//  3. Create a Pipeline and feed it synchronized epochs (use Synchronize to
//     build epochs from the two raw streams).
//  4. Consume the emitted location events, optionally through the provided
//     continuous queries (LocationUpdateQuery, FireCodeQuery).
//
// The heavy lifting — the factored particle filter, spatial indexing over
// sensing regions and belief compression — lives in internal packages and is
// configured through Config.
package rfid

import (
	"repro/internal/checkpoint"
	"repro/internal/containment"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/learn"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/query"
	"repro/internal/sensor"
	"repro/internal/sim"
	"repro/internal/smurf"
	"repro/internal/stream"
	"repro/internal/trace"
)

// Core geometric and stream types.
type (
	// Vec3 is a point in feet; shelves run along y, x points away from the
	// shelf face, z is height.
	Vec3 = geom.Vec3
	// Pose is a reader position plus heading.
	Pose = geom.Pose
	// BBox is an axis-aligned bounding box, used to describe shelf regions.
	BBox = geom.BBox
	// TagID identifies an RFID tag.
	TagID = stream.TagID
	// Reading is one raw RFID reading (time, tag).
	Reading = stream.Reading
	// LocationReport is one raw reader-location report.
	LocationReport = stream.LocationReport
	// Epoch is the synchronized per-time-step view of both raw streams.
	Epoch = stream.Epoch
	// Event is one clean output event: a tag with an estimated location.
	Event = stream.Event
	// EventStats carries summary statistics attached to an event.
	EventStats = stream.EventStats
	// ReportPolicy selects when events are emitted.
	ReportPolicy = stream.ReportPolicy
)

// Report policies.
const (
	ReportAfterDelay   = stream.ReportAfterDelay
	ReportOnLeaveScope = stream.ReportOnLeaveScope
	ReportEveryEpoch   = stream.ReportEveryEpoch
)

// Model types.
type (
	// World describes shelves and shelf tags with known locations.
	World = model.World
	// Shelf is one shelf region.
	Shelf = model.Shelf
	// Params bundles all model parameters (sensor, motion, sensing, object).
	Params = model.Params
	// SensorModel is the parametric logistic sensor model of the paper.
	SensorModel = sensor.Model
	// SensorProfile is any observation model (learned or ground truth).
	SensorProfile = sensor.Profile
	// Config configures a Pipeline.
	Config = core.Config
	// Stats are the engine's cumulative work counters.
	Stats = core.Stats
	// Tolerance bounds the numeric difference CompareTolerance allows.
	Tolerance = core.Tolerance
)

// CompareTolerance compares two event streams under a numeric tolerance:
// schedules (count, Time, Tag) exactly, locations per axis within the bound.
// Use it to check a Config.FastMath run against the exact default, which is
// deterministic but not byte-identical to it.
func CompareTolerance(got, want []Event, tol Tolerance) error {
	return core.CompareTolerance(got, want, tol)
}

// FastMathTolerance is the documented equivalence bound between a
// Config.FastMath run and the exact default.
func FastMathTolerance() Tolerance { return core.FastMathTolerance() }

// NewWorld returns an empty world description.
func NewWorld() *World { return model.NewWorld() }

// NewBBox returns the bounding box spanned by two corner points.
func NewBBox(a, b Vec3) BBox { return geom.NewBBox(a, b) }

// DefaultParams returns reasonable default model parameters for a slow
// robot-mounted reader; calibration with Calibrate is recommended for real
// deployments.
func DefaultParams() Params { return model.DefaultParams() }

// DefaultConfig returns the full-system configuration (factored filter,
// spatial index and belief compression enabled).
func DefaultConfig(params Params, world *World) Config { return core.DefaultConfig(params, world) }

// SortEventsByTimeThenTag sorts events in place into the canonical output
// order (by time, ties broken by tag id).
func SortEventsByTimeThenTag(events []Event) { stream.ByTimeThenTag(events) }

// Synchronize merges the two raw streams into per-epoch views, averaging
// location reports and grouping readings by epoch.
func Synchronize(readings []Reading, locations []LocationReport) []*Epoch {
	return stream.Synchronize(readings, locations)
}

// engine is the method set shared by the serial core.Engine and the
// sharded core.ShardedEngine; Pipeline delegates to whichever the Config
// selected.
type engine interface {
	ProcessEpoch(*stream.Epoch) ([]stream.Event, error)
	Finish() []stream.Event
	Run([]*stream.Epoch) ([]stream.Event, error)
	Estimate(stream.TagID) (geom.Vec3, stream.EventStats, bool)
	ReaderEstimate() geom.Pose
	TrackedObjects() []stream.TagID
	Stats() core.Stats
	ParticleCount() int
	Config() core.Config
	SaveState(*checkpoint.Encoder)
	RestoreState(*checkpoint.Decoder) error
	SetTraceRecorder(*trace.Recorder)
}

// Epoch-stage tracing: a TraceRecorder threaded into a Pipeline (usually via
// RunnerConfig.TraceEpochs) timestamps the stages of every processed epoch
// into a bounded ring with zero allocations on the record path. Tracing is
// observational only — it never perturbs RNG consumption or output, so
// traced runs stay byte-identical to untraced ones.
type (
	// TraceRecorder records per-epoch stage timings; a nil recorder is a
	// valid disabled recorder.
	TraceRecorder = trace.Recorder
	// EpochTrace is the recorded timing of one sealed epoch.
	EpochTrace = trace.EpochTrace
	// TraceStage identifies one stage of the epoch pipeline.
	TraceStage = trace.Stage
)

// The traceable stages of the epoch pipeline, in order.
const (
	TraceStageDecode    = trace.StageDecode
	TraceStagePrologue  = trace.StagePrologue
	TraceStageStep      = trace.StageStep
	TraceStageEstimate  = trace.StageEstimate
	TraceStageQueryEval = trace.StageQueryEval
	TraceStageWALAppend = trace.StageWALAppend
	TraceStageSeal      = trace.StageSeal
	NumTraceStages      = trace.NumStages
)

// NewTraceRecorder returns a recorder retaining the last capacity epochs;
// capacity <= 0 returns nil (tracing disabled).
func NewTraceRecorder(capacity int) *TraceRecorder { return trace.New(capacity) }

// TraceStageNames returns the snake_case names of all stages in pipeline
// order — the stage taxonomy used by /metrics and the trace API.
func TraceStageNames() []string { return trace.StageNames() }

// Pipeline is the end-to-end cleaning and transformation engine.
//
// A Pipeline is not safe for concurrent use: the hot path keeps its working
// memory in pipeline-owned scratch arenas (that is what makes steady-state
// epochs allocation-free), so ProcessEpoch/Run and the read-side methods
// (Estimate, ReaderEstimate, Particles) must be serialized by the caller.
// The Runner and the serving layer already do this — the Runner under its
// mutex, the server on its single engine goroutine. Parallelism belongs
// inside an epoch (Config.Workers), where each worker has its own arena.
type Pipeline struct {
	eng engine
}

// NewPipeline builds a Pipeline from a Config. Setting Config.Workers to a
// value greater than one (or to zero with NewShardedPipeline) selects the
// sharded parallel engine, which partitions objects across worker goroutines
// per epoch; its output is byte-identical to the serial engine's.
func NewPipeline(cfg Config) (*Pipeline, error) {
	if cfg.Workers > 1 {
		return NewShardedPipeline(cfg)
	}
	eng, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Pipeline{eng: eng}, nil
}

// NewShardedPipeline builds a Pipeline backed by the sharded parallel engine
// regardless of Config.Workers (zero means one worker per CPU). It requires a
// factored configuration.
func NewShardedPipeline(cfg Config) (*Pipeline, error) {
	eng, err := core.NewSharded(cfg)
	if err != nil {
		return nil, err
	}
	return &Pipeline{eng: eng}, nil
}

// ProcessEpoch feeds one synchronized epoch and returns the events emitted at
// that epoch.
func (p *Pipeline) ProcessEpoch(ep *Epoch) ([]Event, error) { return p.eng.ProcessEpoch(ep) }

// Finish flushes final location events for every tracked object.
func (p *Pipeline) Finish() []Event { return p.eng.Finish() }

// Run processes a full sequence of epochs, including the final flush.
func (p *Pipeline) Run(epochs []*Epoch) ([]Event, error) { return p.eng.Run(epochs) }

// Estimate returns the current location estimate of an object.
func (p *Pipeline) Estimate(id TagID) (Vec3, EventStats, bool) { return p.eng.Estimate(id) }

// ReaderEstimate returns the current estimate of the true reader pose.
func (p *Pipeline) ReaderEstimate() Pose { return p.eng.ReaderEstimate() }

// TrackedObjects returns the ids of all objects seen so far.
func (p *Pipeline) TrackedObjects() []TagID { return p.eng.TrackedObjects() }

// Stats returns cumulative work counters.
func (p *Pipeline) Stats() Stats { return p.eng.Stats() }

// Particles returns the number of particles currently alive in the engine
// (reader plus per-object particles); a live capacity signal for serving
// metrics.
func (p *Pipeline) Particles() int { return p.eng.ParticleCount() }

// Fingerprint returns the stable hash of the pipeline's effective
// configuration. Checkpoints record it so that restore can refuse state
// produced under different model parameters (which would silently diverge
// rather than fail). Worker and shard counts are excluded — checkpoints are
// portable across parallelism settings.
func (p *Pipeline) Fingerprint() uint64 { return p.eng.Config().Fingerprint() }

// SaveState serializes the pipeline's full inference state (particle columns,
// reader particles, random-stream positions, index and compression state)
// into the encoder. The caller must serialize against ProcessEpoch, exactly
// as for the read-side methods.
func (p *Pipeline) SaveState(e *checkpoint.Encoder) { p.eng.SaveState(e) }

// RestoreState rebuilds the pipeline's inference state from a SaveState
// payload. The pipeline must be freshly built from a Config with the same
// Fingerprint; corrupt input errors, never panics.
func (p *Pipeline) RestoreState(d *checkpoint.Decoder) error { return p.eng.RestoreState(d) }

// SetTraceRecorder installs (or, with nil, removes) a per-epoch stage
// recorder on the engine. Call it before processing; the recorder is not
// part of checkpointed state.
func (p *Pipeline) SetTraceRecorder(r *TraceRecorder) { p.eng.SetTraceRecorder(r) }

// Calibration (Section III-C).
type (
	// CalibrationConfig tunes the EM-based self-calibration.
	CalibrationConfig = learn.Config
	// CalibrationResult carries the learned parameters and diagnostics.
	CalibrationResult = learn.Result
)

// DefaultCalibrationConfig returns the calibration settings used in the
// paper's experiments.
func DefaultCalibrationConfig() CalibrationConfig { return learn.DefaultConfig() }

// Calibrate estimates model parameters from a training trace whose world
// includes shelf tags with known locations.
func Calibrate(epochs []*Epoch, world *World, init Params, cfg CalibrationConfig) (CalibrationResult, error) {
	return learn.Calibrate(epochs, world, init, cfg)
}

// Continuous queries (Section II-B).
type (
	// LocationUpdate is an output row of the location-update query.
	LocationUpdate = query.LocationUpdate
	// LocationUpdateQuery streams location changes per object.
	LocationUpdateQuery = query.LocationUpdateQuery
	// FireCodeConfig configures the fire-code density query.
	FireCodeConfig = query.FireCodeConfig
	// FireCodeQuery streams fire-code violations.
	FireCodeQuery = query.FireCodeQuery
	// Violation is an output row of the fire-code query.
	Violation = query.Violation
	// AreaID identifies a square-foot cell.
	AreaID = query.AreaID
)

// NewLocationUpdateQuery returns a streaming location-update query; events
// whose location moved at most minChange feet are suppressed.
func NewLocationUpdateQuery(minChange float64) *LocationUpdateQuery {
	return query.NewLocationUpdateQuery(minChange)
}

// NewFireCodeQuery returns a streaming fire-code query.
func NewFireCodeQuery(cfg FireCodeConfig) *FireCodeQuery { return query.NewFireCodeQuery(cfg) }

// Query registry: declarative registration and incremental evaluation of
// continuous queries, the substrate of the serving layer (cmd/rfidserve).
type (
	// QuerySpec declaratively describes a continuous query (JSON-friendly).
	QuerySpec = query.Spec
	// QueryKind names a continuous-query type.
	QueryKind = query.Kind
	// QueryRegistry owns registered continuous queries and feeds them the
	// clean event stream incrementally.
	QueryRegistry = query.Registry
	// QueryInfo describes a registered query.
	QueryInfo = query.Info
	// QueryResult is one buffered result row of a registered query.
	QueryResult = query.Result
	// AggregateConfig configures the windowed aggregate query.
	AggregateConfig = query.AggregateConfig
	// AggregateRow is an output row of the windowed aggregate query.
	AggregateRow = query.AggregateRow
	// WindowedAggregateQuery streams windowed aggregates over the clean
	// event stream.
	WindowedAggregateQuery = query.WindowedAggregateQuery
)

// Registrable query kinds.
const (
	QueryLocationUpdates   = query.KindLocationUpdates
	QueryFireCode          = query.KindFireCode
	QueryWindowedAggregate = query.KindWindowedAggregate
)

// NewQueryRegistry returns an empty continuous-query registry; maxBuffered
// caps each query's undelivered results (0 selects the default, negative
// disables the cap for batch evaluation over a finite stream).
func NewQueryRegistry(maxBuffered int) *QueryRegistry { return query.NewRegistry(maxBuffered) }

// NewWindowedAggregateQuery returns a streaming windowed aggregate query.
func NewWindowedAggregateQuery(cfg AggregateConfig) *WindowedAggregateQuery {
	return query.NewWindowedAggregateQuery(cfg)
}

// Simulation (the evaluation substrate of Section V).
type (
	// WarehouseConfig configures the synthetic warehouse trace generator.
	WarehouseConfig = sim.WarehouseConfig
	// LabConfig configures the emulated lab deployment.
	LabConfig = sim.LabConfig
	// Trace is a simulated run: world, epochs and ground truth.
	Trace = sim.Trace
)

// Sensor profiles used by the simulator (and usable as observation models).
type (
	// ConeProfile is the cone-shaped ground-truth sensing profile of
	// Fig. 5(a).
	ConeProfile = sensor.ConeProfile
	// SphereProfile is the roughly spherical profile observed for the lab
	// reader (Fig. 5(d)).
	SphereProfile = sensor.SphereProfile
)

// DefaultConeProfile returns the simulator's default cone profile.
func DefaultConeProfile() ConeProfile { return sensor.DefaultConeProfile() }

// DefaultSphereProfile returns the lab-style spherical profile.
func DefaultSphereProfile() SphereProfile { return sensor.DefaultSphereProfile() }

// DefaultSensorModel returns the generic parametric sensor model used before
// calibration.
func DefaultSensorModel() SensorModel { return sensor.DefaultModel() }

// DefaultWarehouseConfig returns the simulator defaults of Section V-A.
func DefaultWarehouseConfig() WarehouseConfig { return sim.DefaultWarehouseConfig() }

// DefaultLabConfig returns the lab-deployment defaults of Section V-C.
func DefaultLabConfig() LabConfig { return sim.DefaultLabConfig() }

// SimulateWarehouse generates a synthetic warehouse trace.
func SimulateWarehouse(cfg WarehouseConfig) (*Trace, error) { return sim.GenerateWarehouse(cfg) }

// SimulateLab generates an emulated lab-deployment trace.
func SimulateLab(cfg LabConfig) (*Trace, error) { return sim.GenerateLab(cfg) }

// Baselines (Section V).
type (
	// SMURFConfig configures the augmented SMURF baseline.
	SMURFConfig = smurf.Config
	// SMURF is the augmented SMURF estimator.
	SMURF = smurf.Estimator
	// UniformBaseline is the uniform-sampling baseline.
	UniformBaseline = smurf.Uniform
)

// NewSMURF returns the augmented SMURF baseline estimator.
func NewSMURF(cfg SMURFConfig, world *World) *SMURF { return smurf.New(cfg, world) }

// NewUniformBaseline returns the uniform-sampling baseline.
func NewUniformBaseline(cfg SMURFConfig, world *World) *UniformBaseline {
	return smurf.NewUniform(cfg, world)
}

// Containment inference (the paper's future-work extension): infer which
// container (case, pallet) each item sits in from persistent co-location in
// the clean event stream.
type (
	// ContainmentConfig tunes containment inference.
	ContainmentConfig = containment.Config
	// ContainmentTracker accumulates per-scan snapshots and infers facts.
	ContainmentTracker = containment.Tracker
	// ContainmentFact is one inferred item-in-container relationship.
	ContainmentFact = containment.Fact
)

// DefaultContainmentConfig returns the containment-inference defaults.
func DefaultContainmentConfig() ContainmentConfig { return containment.DefaultConfig() }

// NewContainmentTracker returns a tracker; containers lists the tags of
// cases/pallets (every other tag is treated as an item).
func NewContainmentTracker(cfg ContainmentConfig, containers []TagID) *ContainmentTracker {
	return containment.NewTracker(cfg, containers)
}

// Evaluation helpers.
type (
	// ErrorReport summarizes location error against ground truth.
	ErrorReport = metrics.ErrorReport
	// LocationEstimate pairs a tag with an estimated location.
	LocationEstimate = metrics.LocationEstimate
)

// ScoreEvents scores an event stream against a ground-truth lookup.
func ScoreEvents(events []Event, truth func(id TagID, t int) (Vec3, bool)) ErrorReport {
	return metrics.ScoreEvents(events, truth)
}

// ScoreAgainstTrace scores an event stream against a simulated trace's ground
// truth.
func ScoreAgainstTrace(events []Event, trace *Trace) ErrorReport {
	return metrics.ScoreEvents(events, func(id TagID, t int) (Vec3, bool) {
		return trace.Truth.ObjectAt(id, t)
	})
}

// Stream codecs for on-disk traces.
var (
	// WriteReadingsCSV / ReadReadingsCSV persist raw reading streams.
	WriteReadingsCSV = stream.WriteReadingsCSV
	ReadReadingsCSV  = stream.ReadReadingsCSV
	// WriteLocationsCSV / ReadLocationsCSV persist reader location streams.
	WriteLocationsCSV = stream.WriteLocationsCSV
	ReadLocationsCSV  = stream.ReadLocationsCSV
	// WriteEventsCSV / ReadEventsCSV persist clean event streams.
	WriteEventsCSV = stream.WriteEventsCSV
	ReadEventsCSV  = stream.ReadEventsCSV
)

// RawStreams converts a simulated trace back into the two raw streams, e.g.
// for writing them to disk in the on-the-wire format.
func RawStreams(trace *Trace) ([]Reading, []LocationReport) { return sim.RawStreams(trace) }
