package api

import "encoding/json"

// Reading is one raw RFID reading on the wire.
type Reading struct {
	Time int    `json:"time"`
	Tag  string `json:"tag"`
}

// LocationReport is one raw reader-location report on the wire.
type LocationReport struct {
	Time   int     `json:"time"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Z      float64 `json:"z"`
	Phi    float64 `json:"phi,omitempty"`
	HasPhi bool    `json:"has_phi,omitempty"`
}

// IngestRequest is the POST .../ingest body: one batch of raw records.
type IngestRequest struct {
	Readings  []Reading        `json:"readings,omitempty"`
	Locations []LocationReport `json:"locations,omitempty"`
}

// IngestResponse acknowledges an accepted batch. On a durable session a 202
// is a durability receipt: the batch reached the write-ahead log (under the
// "always" fsync policy) before the response was sent.
type IngestResponse struct {
	Queued     bool `json:"queued"`
	Durable    bool `json:"durable"`
	Readings   int  `json:"readings"`
	Locations  int  `json:"locations"`
	QueueDepth int  `json:"queue_depth"`
}

// FlushResponse reports what a synchronous flush processed. A 200 means every
// batch ingested before the flush has been fully processed — the
// deterministic synchronization point batch clients use.
type FlushResponse struct {
	Events  int `json:"events"`
	Results int `json:"results"`
}

// TagSnapshot is the current belief about one tag: the posterior-mean
// location and its per-axis variance.
type TagSnapshot struct {
	Tag          string  `json:"tag"`
	Found        bool    `json:"found"`
	X            float64 `json:"x"`
	Y            float64 `json:"y"`
	Z            float64 `json:"z"`
	VarX         float64 `json:"var_x"`
	VarY         float64 `json:"var_y"`
	VarZ         float64 `json:"var_z"`
	NumParticles int     `json:"num_particles"`
	Compressed   bool    `json:"compressed"`
}

// SnapshotOverview is the GET .../snapshot body: reader pose estimate,
// progress counters and the tracked tag ids.
type SnapshotOverview struct {
	Reader         Pose     `json:"reader"`
	Epochs         int      `json:"epochs"`
	NextEpoch      int      `json:"next_epoch"`
	Watermark      int      `json:"watermark"`
	BufferedEpochs int      `json:"buffered_epochs"`
	Particles      int      `json:"particles"`
	Tracked        []string `json:"tracked"`
}

// HistorySnapshot is the GET .../snapshot?epoch=N body: every object's MAP
// location as it was when that epoch was sealed.
type HistorySnapshot struct {
	Epoch   int           `json:"epoch"`
	Objects []TagSnapshot `json:"objects"`
}

// Query kinds registrable through QuerySpec.Kind.
const (
	QueryLocationUpdates   = "location-updates"
	QueryFireCode          = "fire-code"
	QueryWindowedAggregate = "windowed-aggregate"
)

// Query evaluation modes for QuerySpec.Mode.
const (
	// ModeContinuous (the default, also spelled "") evaluates incrementally
	// over the live clean event stream.
	ModeContinuous = "continuous"
	// ModeHistory evaluates once, at registration, over the retained epoch
	// history; the query is finished immediately and its rows are polled like
	// any other query's.
	ModeHistory = "history"
)

// QuerySpec declaratively describes a continuous query; the POST .../queries
// body is exactly this shape. Only the fields of the selected Kind are
// consulted.
type QuerySpec struct {
	Kind string `json:"kind"`

	// Mode selects live-stream ("continuous", the default) or time-travel
	// ("history") evaluation.
	Mode string `json:"mode,omitempty"`
	// FromEpoch and ToEpoch bound a history-mode query's epoch range; ToEpoch
	// 0 means "through the newest sealed epoch".
	FromEpoch int `json:"from_epoch,omitempty"`
	ToEpoch   int `json:"to_epoch,omitempty"`

	// MinChange (location-updates): suppress updates that moved at most this
	// many feet.
	MinChange float64 `json:"min_change,omitempty"`

	// WindowEpochs (fire-code, windowed-aggregate): range window length in
	// epochs (default 5).
	WindowEpochs int `json:"window_epochs,omitempty"`
	// ThresholdPounds (fire-code): the Having threshold (default 200).
	ThresholdPounds float64 `json:"threshold_pounds,omitempty"`
	// WeightPounds (fire-code, windowed-aggregate): uniform per-object
	// weight in pounds (default 1).
	WeightPounds float64 `json:"weight_pounds,omitempty"`

	// Op (windowed-aggregate): count, sum-weight or mean-weight (default
	// count).
	Op string `json:"op,omitempty"`
	// GroupBy (windowed-aggregate): none or area (default none).
	GroupBy string `json:"group_by,omitempty"`
}

// QueryInfo describes a registered query.
type QueryInfo struct {
	ID   string    `json:"id"`
	Spec QuerySpec `json:"spec"`
	// NextSeq is the sequence number the next result will get (equivalently:
	// the number of results produced so far).
	NextSeq int `json:"next_seq"`
	// Buffered is the number of results currently held for polling.
	Buffered int `json:"buffered"`
	// Dropped is the number of old results evicted unpolled.
	Dropped int `json:"dropped"`
	// Finished reports that the query will produce no further rows.
	Finished bool `json:"finished,omitempty"`
}

// QueryList is the GET .../queries body when no pagination parameters are
// given: a bare array, the original v1 shape.
type QueryList []QueryInfo

// QueryPage is the GET .../queries body when ?limit= or ?page_token= is
// present. Queries are ordered by id ascending; NextPageToken is non-empty
// when more queries follow and passes back verbatim as the next request's
// page_token. (The unpaginated response keeps the bare-array QueryList shape
// — v1 fields are only ever added, never reshaped — so the object form is
// opt-in via the query parameters.)
type QueryPage struct {
	Queries []QueryInfo `json:"queries"`
	// NextPageToken resumes the listing after the last returned query. Empty
	// means the listing is complete.
	NextPageToken string `json:"next_page_token,omitempty"`
}

// QueryResult is one result row. Seq numbers are per query, start at 0 and
// never repeat, so clients poll with "everything after seq N"; Row is the
// kind-specific row object (location update, violation or aggregate row).
type QueryResult struct {
	Seq int             `json:"seq"`
	Row json.RawMessage `json:"row"`
}

// ResultsPage is the GET .../queries/{id}/results body. With ?wait=DURATION
// the server long-polls: it holds the request until a result with Seq >
// after arrives, the wait elapses, or the query finishes — so clients stream
// results without hot-polling.
type ResultsPage struct {
	Query   QueryInfo     `json:"query"`
	Results []QueryResult `json:"results"`
}

// Health is the GET /healthz and /v1/healthz body.
type Health struct {
	OK bool `json:"ok"`
	// State is the default session's durability lifecycle: recovering |
	// serving | failed | closed.
	State         string  `json:"state"`
	Durable       bool    `json:"durable"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Sessions is the number of live sessions.
	Sessions int `json:"sessions"`
	// LastCheckpointEpoch and RecoveredFromEpoch describe the default
	// session's durable progress (durable servers only).
	LastCheckpointEpoch *int `json:"last_checkpoint_epoch,omitempty"`
	RecoveredFromEpoch  *int `json:"recovered_from_epoch,omitempty"`
	// Role is the node's replication role: primary | replica | promoting
	// (empty on servers predating replication, meaning primary).
	Role string `json:"role,omitempty"`
	// AppliedEpoch is a replica's applied engine epoch on the default
	// session (-1 before any epoch is sealed; absent on primaries).
	AppliedEpoch *int64 `json:"applied_epoch,omitempty"`
	// ReplicationLagSeconds is a replica's staleness estimate: seconds
	// between the primary shipping the newest applied record (or heartbeat)
	// and the replica applying it. Absent on primaries.
	ReplicationLagSeconds *float64 `json:"replication_lag_seconds,omitempty"`
	// Followers is the number of replica connections a primary is currently
	// shipping to (absent on replicas).
	Followers *int `json:"followers,omitempty"`
}
