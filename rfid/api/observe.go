package api

// Observability wire types: the epoch-stage trace surface
// (GET /v1/sessions/{sid}/trace) and the live debug-stats surface
// (GET /v1/sessions/{sid}/stats). Like every type in this package they are
// add-only: fields may be added in later revisions, never removed or
// renamed.

// TraceEpoch is the recorded timing of one sealed epoch. Stages maps the
// snake_case stage name (decode, prologue, step, estimate, query_eval,
// wal_append, seal) to the seconds spent in it; stages that did not run are
// omitted.
type TraceEpoch struct {
	// Epoch is the epoch time that was sealed.
	Epoch int `json:"epoch"`
	// WallSeconds is the wall-clock time of the whole epoch, which can
	// exceed the sum of the stages.
	WallSeconds float64 `json:"wall_seconds"`
	// Stages holds the per-stage seconds, keyed by stage name.
	Stages map[string]float64 `json:"stages"`
}

// TraceResponse answers GET /v1/sessions/{sid}/trace?epochs=N with the
// per-stage timings of up to N of the most recently sealed epochs, oldest
// first. An evicted session answers with its ring empty (the trace ring is
// in-memory state; reading it never hydrates the session).
type TraceResponse struct {
	// Enabled reports whether epoch-stage tracing is on (-trace-epochs > 0).
	Enabled bool `json:"enabled"`
	// Capacity is the per-session trace ring size (0 when disabled).
	Capacity int `json:"capacity"`
	// Epochs holds the retained traces, oldest first.
	Epochs []TraceEpoch `json:"epochs"`
}

// SessionDebugStats answers GET /v1/sessions/{sid}/stats: a point-in-time
// operational view of one session, cheap enough to poll. Reading it never
// hydrates an evicted session — engine-derived fields then report the view
// cached at eviction.
type SessionDebugStats struct {
	// ID is the session id; State is its lifecycle (serving, evicted, ...).
	ID    string `json:"id"`
	State string `json:"state"`
	// Durable reports whether the session writes a WAL and checkpoints.
	Durable bool `json:"durable"`
	// Resident reports whether the engine is in memory right now.
	Resident bool `json:"resident"`
	// QueueDepth and QueueCap describe the bounded op queue.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// StreamActive reports a live streaming-ingest connection; StreamSeq is
	// the highest durably applied stream batch sequence.
	StreamActive bool   `json:"stream_active"`
	StreamSeq    uint64 `json:"stream_seq"`
	// UptimeSeconds is the time since the session object was built.
	UptimeSeconds float64 `json:"uptime_seconds"`

	// Engine progress (cached at eviction for non-resident sessions).
	Stats SessionStats `json:"stats"`

	// Durability state: the last checkpointed epoch (-1 before the first),
	// the seconds since that checkpoint was written, and the WAL segment
	// open for appends (durable sessions only).
	CheckpointEpoch      int64   `json:"checkpoint_epoch,omitempty"`
	CheckpointAgeSeconds float64 `json:"checkpoint_age_seconds,omitempty"`
	WALSegment           uint64  `json:"wal_segment,omitempty"`

	// Tracing: cumulative seconds per stage over the session's residency and
	// the most recent sealed epochs (both empty when tracing is disabled or
	// the session is evicted).
	TraceEnabled bool               `json:"trace_enabled"`
	TracedEpochs int64              `json:"traced_epochs,omitempty"`
	StageSeconds map[string]float64 `json:"stage_seconds,omitempty"`
	RecentEpochs []TraceEpoch       `json:"recent_epochs,omitempty"`
}
