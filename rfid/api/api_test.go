package api

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestErrorEnvelopeWire pins the envelope's exact wire shape and the Error
// type's error-interface rendering.
func TestErrorEnvelopeWire(t *testing.T) {
	env := ErrorEnvelope{Error: &Error{Code: ErrNotFound, Message: "no such thing"}}
	data, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"error":{"code":"not_found","message":"no such thing"}}`
	if string(data) != want {
		t.Fatalf("envelope = %s, want %s", data, want)
	}

	var back ErrorEnvelope
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	back.Error.HTTPStatus = 404
	msg := back.Error.Error()
	for _, part := range []string{"no such thing", "not_found", "404"} {
		if !strings.Contains(msg, part) {
			t.Fatalf("Error() = %q, missing %q", msg, part)
		}
	}
	// Without a status the rendering omits the http clause.
	if msg := (&Error{Code: ErrInternal, Message: "boom"}).Error(); strings.Contains(msg, "http") {
		t.Fatalf("statusless Error() = %q mentions http", msg)
	}
}

// TestOmitEmptyDefaults pins that zero-valued optional fields stay off the
// wire — the property that lets v1 add fields without breaking old readers.
func TestOmitEmptyDefaults(t *testing.T) {
	data, err := json.Marshal(CreateSessionRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{}" {
		t.Fatalf("zero CreateSessionRequest = %s, want {}", data)
	}
	data, err = json.Marshal(QuerySpec{Kind: QueryLocationUpdates})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"kind":"location-updates"}` {
		t.Fatalf("minimal QuerySpec = %s", data)
	}
}
