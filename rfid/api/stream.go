package api

// Streaming ingest control messages. Unlike the rest of this package these do
// NOT travel as JSON: POST /v1/sessions/{sid}/stream upgrades the connection
// to the binary framed protocol (see rfid/wire), and these structs are the
// typed form of its control frames. They live here because they are part of
// the stable v1 surface — the same versioning rules apply (fields are only
// ever added).

// StreamHello is the first frame of a stream, sent by the server immediately
// after the 101 upgrade. It tells the client where to resume and how hard it
// may push.
type StreamHello struct {
	// Version is the stream protocol version (currently 1).
	Version int
	// ResumeAfter is the highest batch sequence number the session has
	// durably applied. The client must send its next batch with sequence
	// ResumeAfter+1 and may discard buffered batches at or below it.
	ResumeAfter uint64
	// Window is the server's flow-control window: the client keeps at most
	// this many batches in flight (sent but not yet acknowledged).
	Window int
	// MaxFrameBytes caps a single frame payload the server will accept.
	MaxFrameBytes int
}

// StreamAck acknowledges batches cumulatively. On a durable session an ack is
// a durability receipt with the same semantics as HTTP 202: every batch with
// sequence <= UpTo reached the write-ahead log (under the "always" fsync
// policy) before the ack was sent.
type StreamAck struct {
	// UpTo is the highest contiguously applied batch sequence number.
	UpTo uint64
	// Durable reports whether the session persists a WAL (acks on a
	// non-durable session only confirm in-memory application).
	Durable bool
	// Watermark is the session's low-watermark epoch after applying the
	// acknowledged batches.
	Watermark int
	// Window restates the flow-control window (credit): the client may have
	// up to Window batches beyond UpTo in flight.
	Window int
}

// StreamError is the terminal frame of a failed stream: the server reports a
// structured error and closes the connection. Codes reuse the ErrCode
// vocabulary of the JSON envelope.
type StreamError struct {
	Code    string
	Message string
	// RetryAfterMS, when non-zero, advises how long to wait before
	// reconnecting (mirrors Error.RetryAfterMS).
	RetryAfterMS int
}
