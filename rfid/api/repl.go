package api

// Replication surface: role names, the staleness headers replica-served
// reads carry, and the promotion response. The replication data plane itself
// (WAL shipping over POST /v1/replicate) speaks binary frames defined in
// rfid/wire — server-to-server protocol, not public API — but the role a
// node plays, and how stale a replica-served read is, are public facts.

// Replication roles reported in Health.Role and the Rfid-Role header.
const (
	// RolePrimary: the node accepts writes and ships its WAL to followers.
	RolePrimary = "primary"
	// RoleReplica: the node follows a primary; reads are served locally from
	// replicated state, writes are refused with code "read_only".
	RoleReplica = "replica"
	// RolePromoting: a replica sealing its mirrored log and finishing replay
	// on its way to becoming primary.
	RolePromoting = "promoting"
)

// Staleness headers on replica-served reads (GET .../snapshot,
// GET .../snapshot?epoch=N, query registration and result polling). A
// primary serves these endpoints without the headers.
const (
	// HeaderRole reports the serving node's replication role.
	HeaderRole = "Rfid-Role"
	// HeaderAppliedEpoch reports the session's applied engine epoch at the
	// time of the read (-1 before any epoch is sealed).
	HeaderAppliedEpoch = "Rfid-Applied-Epoch"
	// HeaderReplicationLag reports the node's replication-lag estimate in
	// seconds (decimal).
	HeaderReplicationLag = "Rfid-Replication-Lag-Seconds"
)

// PromoteResponse is the POST /v1/promote body: the node's role after the
// promotion request (idempotent — promoting an existing primary reports
// "primary" without error).
type PromoteResponse struct {
	// Role is the node's role when the response was written.
	Role string `json:"role"`
	// Sessions is the number of sessions sealed and promoted to writable.
	Sessions int `json:"sessions"`
}
