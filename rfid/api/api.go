// Package api is the stable public wire schema of the serving layer: the
// JSON request/response bodies of every /v1 endpoint (and of the legacy
// unversioned aliases, which share the same shapes), plus the structured
// error envelope. It is deliberately decoupled from the engine's internal
// types — the serving layer converts at the boundary — so internal refactors
// never change what goes over the wire.
//
// The package has no dependencies beyond the standard library and is safe to
// vendor into clients; rfid/client is a typed SDK built entirely on these
// types.
//
// # Versioning
//
// Every type in this package belongs to the v1 surface. Fields are only ever
// added (with omitempty semantics for new optional fields); renaming or
// removing a field, or changing a field's JSON type, requires a new API
// version under a new path prefix.
package api

import "fmt"

// Error is the structured error every endpoint returns on failure, wrapped in
// the envelope {"error":{"code":...,"message":...}}. It implements the error
// interface, so SDK callers can errors.As it back out of any failed call.
type Error struct {
	// Code is a stable, machine-readable error class (see the ErrCode
	// constants); clients should branch on Code, never on Message.
	Code string `json:"code"`
	// Message is a human-readable description of this specific failure.
	Message string `json:"message"`
	// RetryAfterMS, when non-zero, is the server's advice on how long to wait
	// before retrying. It accompanies "unavailable" errors (full op queue,
	// stream backpressure refusal, session-limit); the same value travels in
	// the HTTP Retry-After header, rounded up to whole seconds.
	RetryAfterMS int `json:"retry_after_ms,omitempty"`
	// HTTPStatus is the HTTP status the error travelled with. It is not part
	// of the wire body (the status line already carries it); the client SDK
	// fills it in on decode.
	HTTPStatus int `json:"-"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.HTTPStatus != 0 {
		return fmt.Sprintf("api: %s (%s, http %d)", e.Message, e.Code, e.HTTPStatus)
	}
	return fmt.Sprintf("api: %s (%s)", e.Message, e.Code)
}

// Stable error codes.
const (
	// ErrBadRequest: the request body or parameters failed validation.
	ErrBadRequest = "bad_request"
	// ErrNotFound: the addressed session, query or tag does not exist.
	ErrNotFound = "not_found"
	// ErrConflict: the request contradicts current state (duplicate session
	// id, deleting the default session).
	ErrConflict = "conflict"
	// ErrUnavailable: backpressure or shutdown; the request may be retried.
	ErrUnavailable = "unavailable"
	// ErrReadOnly: the request mutates state but this node is a replica;
	// retry against the primary (or after promotion).
	ErrReadOnly = "read_only"
	// ErrInternal: the server failed to process an otherwise valid request.
	ErrInternal = "internal"
)

// ErrorEnvelope is the wire form of a failed response.
type ErrorEnvelope struct {
	Error *Error `json:"error"`
}

// Vec3 is a point or extent in feet.
type Vec3 struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	Z float64 `json:"z"`
}

// Pose is a reader position plus heading (radians).
type Pose struct {
	X   float64 `json:"x"`
	Y   float64 `json:"y"`
	Z   float64 `json:"z"`
	Phi float64 `json:"phi"`
}

// Shelf is one shelf region of a world, spanned by two corner points.
type Shelf struct {
	ID  string `json:"id"`
	Min Vec3   `json:"min"`
	Max Vec3   `json:"max"`
}

// ShelfTag is one reference tag with a known, fixed location.
type ShelfTag struct {
	Tag string `json:"tag"`
	Loc Vec3   `json:"loc"`
}

// World describes the physical environment a session's inference runs in:
// shelf regions that bound where objects can be, and shelf tags whose known
// locations anchor reader-location inference.
type World struct {
	Shelves   []Shelf    `json:"shelves,omitempty"`
	ShelfTags []ShelfTag `json:"shelf_tags,omitempty"`
}

// SensorParams are the coefficients of the logistic read-probability model
// p(read | distance d, angle theta) = sigmoid(a0 + a1 d + a2 d^2 + b1 theta
// + b2 theta^2), plus the hard range cutoff.
type SensorParams struct {
	A0       float64 `json:"a0"`
	A1       float64 `json:"a1"`
	A2       float64 `json:"a2"`
	B1       float64 `json:"b1"`
	B2       float64 `json:"b2"`
	MaxRange float64 `json:"max_range"`
}

// MotionParams describe the reader motion model: average per-epoch
// displacement plus Gaussian noise.
type MotionParams struct {
	Velocity    Vec3    `json:"velocity"`
	Noise       Vec3    `json:"noise"`
	PhiNoise    float64 `json:"phi_noise"`
	PhiVelocity float64 `json:"phi_velocity,omitempty"`
}

// SensingParams describe the reader location sensing model: reported reader
// location = true location + bias + Gaussian noise.
type SensingParams struct {
	Bias  Vec3 `json:"bias"`
	Noise Vec3 `json:"noise"`
}

// ObjectParams describe object dynamics: the per-epoch move probability.
type ObjectParams struct {
	MoveProb float64 `json:"move_prob"`
}

// Params bundles the model parameters of a session. Every field is optional;
// nil fields take the server's calibrated or default values.
type Params struct {
	Sensor  *SensorParams  `json:"sensor,omitempty"`
	Motion  *MotionParams  `json:"motion,omitempty"`
	Sensing *SensingParams `json:"sensing,omitempty"`
	Object  *ObjectParams  `json:"object,omitempty"`
}

// EngineConfig carries the per-session inference and runtime knobs. Zero
// values take the server's defaults.
type EngineConfig struct {
	// ObjectParticles is the number of particles per tracked object.
	ObjectParticles int `json:"object_particles,omitempty"`
	// ReaderParticles is the number of reader-pose particles.
	ReaderParticles int `json:"reader_particles,omitempty"`
	// Workers is the sharded engine's worker-goroutine count (0 = one per
	// CPU). The output is byte-identical for any worker count.
	Workers int `json:"workers,omitempty"`
	// ShardCount is the number of object shards the engine partitions its
	// particles into (0 = engine default). Like Workers, it changes only how
	// the work is parallelized, never the output.
	ShardCount int `json:"shard_count,omitempty"`
	// Seed seeds all random choices of the session's engine.
	Seed int64 `json:"seed,omitempty"`
	// HoldEpochs is the lateness slack before an epoch is sealed.
	HoldEpochs int `json:"hold_epochs,omitempty"`
	// HistoryEpochs enables time-travel reads: the newest N sealed epochs'
	// MAP snapshots are retained for GET snapshot?epoch=N and history-mode
	// queries.
	HistoryEpochs int `json:"history_epochs,omitempty"`
	// QueueSize bounds the session's ingest queue, in batches (the
	// backpressure threshold).
	QueueSize int `json:"queue_size,omitempty"`
}

// Synthetic world sources for CreateSessionRequest.Source.
const (
	// SourceWorld (the default, also spelled "") uses the world given in the
	// request body.
	SourceWorld = "world"
	// SourceSynthetic synthesizes an open floor so ad-hoc ingest works
	// without describing shelves; dimensions come from the Synthetic block.
	SourceSynthetic = "synthetic"
)

// SyntheticWorld sizes the open floor synthesized for source "synthetic".
// Zero dimensions default to a 40 x 40 x 8 ft floor.
type SyntheticWorld struct {
	FloorX float64 `json:"floor_x,omitempty"`
	FloorY float64 `json:"floor_y,omitempty"`
	FloorZ float64 `json:"floor_z,omitempty"`
}

// CreateSessionRequest is the POST /v1/sessions body: everything a session
// needs to run an isolated inference world.
type CreateSessionRequest struct {
	// ID optionally names the session (lowercase letters, digits, '-' and
	// '_', at most 64 chars). Empty lets the server assign s1, s2, ...; the
	// id "default" is reserved for the process-level legacy session.
	ID string `json:"id,omitempty"`
	// Source selects where the world comes from: "world" (the default) reads
	// the World field, "synthetic" synthesizes an open floor.
	Source string `json:"source,omitempty"`
	// World describes shelves and shelf tags for source "world".
	World *World `json:"world,omitempty"`
	// Synthetic sizes the floor for source "synthetic".
	Synthetic *SyntheticWorld `json:"synthetic,omitempty"`
	// Params optionally overrides model parameters (nil fields keep
	// defaults).
	Params *Params `json:"params,omitempty"`
	// Engine optionally overrides inference and runtime knobs.
	Engine *EngineConfig `json:"engine,omitempty"`
}

// SessionStats is the live progress of one session.
type SessionStats struct {
	Epochs         int `json:"epochs"`
	NextEpoch      int `json:"next_epoch"`
	Watermark      int `json:"watermark"`
	BufferedEpochs int `json:"buffered_epochs"`
	Particles      int `json:"particles"`
	TrackedObjects int `json:"tracked_objects"`
	LateDropped    int `json:"late_dropped"`
	Queries        int `json:"queries"`
}

// Session describes one session resource.
type Session struct {
	ID string `json:"id"`
	// State is the session lifecycle: recovering | serving | evicted |
	// failed | closed. "evicted" means the session's engine has been spilled
	// to its on-disk checkpoint by the resident-set LRU; the first touch
	// restores it transparently.
	State string `json:"state"`
	// Durable reports whether the session persists a WAL and checkpoints.
	Durable bool `json:"durable"`
	// Default marks the process-level session the legacy unversioned routes
	// alias onto.
	Default bool   `json:"default,omitempty"`
	Source  string `json:"source,omitempty"`
	// Stats is the session's live progress.
	Stats SessionStats `json:"stats"`
}

// SessionList is the GET /v1/sessions body. The listing is ordered stably
// (the default session first, then by id ascending) and paginates with
// ?limit=N&page_token=T: NextPageToken is non-empty when more sessions
// follow, and passes back verbatim as the next request's page_token.
type SessionList struct {
	Sessions []Session `json:"sessions"`
	// NextPageToken resumes the listing after the last returned session.
	// Empty means the listing is complete.
	NextPageToken string `json:"next_page_token,omitempty"`
}
