package wire

import (
	"bytes"
	"testing"

	"repro/rfid/api"
)

// FuzzWireFrame hardens the framing layer: arbitrary bytes must never panic
// NextFrame or FrameReader, and the two must agree on every frame they
// accept.
func FuzzWireFrame(f *testing.F) {
	var seed []byte
	seed = AppendFrame(seed, []byte("hello"))
	seed = AppendFrame(seed, nil)
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		var fromSplit [][]byte
		rest := data
		for {
			payload, next, err := NextFrame(rest)
			if err != nil || (payload == nil && next == nil) {
				break
			}
			fromSplit = append(fromSplit, bytes.Clone(payload))
			rest = next
		}
		fr := NewFrameReader(bytes.NewReader(data), 0)
		var fromReader [][]byte
		for range fromSplit {
			payload, err := fr.Next()
			if err != nil {
				t.Fatalf("FrameReader rejected a frame NextFrame accepted: %v", err)
			}
			fromReader = append(fromReader, bytes.Clone(payload))
		}
		// bytes.Equal, not reflect.DeepEqual: an empty payload comes back
		// nil from one API and zero-length from the other, which is not a
		// disagreement.
		for i, payload := range fromSplit {
			if !bytes.Equal(payload, fromReader[i]) {
				t.Fatalf("NextFrame and FrameReader disagree on frame %d", i)
			}
		}
	})
}

// FuzzWireBatch drives the batch codec with arbitrary payloads: it must error
// or decode, never panic, and anything accepted must round-trip to identical
// bytes.
func FuzzWireBatch(f *testing.F) {
	var e Encoder
	AppendBatch(&e, APIBatch{
		Readings:  []api.Reading{{Time: 1, Tag: "obj-1"}},
		Locations: []api.LocationReport{{Time: 1, X: 2, HasPhi: true, Phi: 0.5}},
	})
	f.Add(bytes.Clone(e.Bytes()))
	e.Reset()
	AppendBatch(&e, APIBatch{})
	f.Add(bytes.Clone(e.Bytes()))
	f.Add([]byte{})
	f.Add([]byte{0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		var d Decoder
		d.Reset(data)
		b, err := DecodeAPIBatch(&d)
		if err != nil || d.Remaining() != 0 {
			return
		}
		// The raw input is not necessarily canonical (varints have
		// non-minimal encodings the decoder accepts), so the property is
		// idempotence of the canonical form: encode, decode, encode again
		// and the two encodings must be identical bytes.
		var re Encoder
		AppendBatch(&re, b)
		var d2 Decoder
		d2.Reset(re.Bytes())
		b2, err := DecodeAPIBatch(&d2)
		if err != nil || d2.Remaining() != 0 {
			t.Fatalf("canonical encoding of an accepted batch fails to decode: %v", err)
		}
		var re2 Encoder
		AppendBatch(&re2, b2)
		if !bytes.Equal(re2.Bytes(), re.Bytes()) {
			t.Fatalf("canonical round trip unstable:\n got %x\nwant %x", re2.Bytes(), re.Bytes())
		}
	})
}
