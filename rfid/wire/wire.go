// Package wire is the shared binary wire codec of the serving layer: the
// length-prefixed CRC32C frame format and the primitive record codec that the
// write-ahead log (internal/wal) and the streaming ingest connection
// (POST /v1/sessions/{sid}/stream) both speak. Promoting the codec out of the
// WAL means a batch is encoded exactly once ever — the bytes a client streams
// are the bytes the server logs — and torn-frame handling, CRC validation and
// fuzz coverage exist in one place.
//
// A frame is
//
//	u32le payload length | u32le CRC32C(payload) | payload
//
// Payload contents are encoded with the Encoder/Decoder primitives: varints,
// length-checked strings and IEEE-754 bit patterns (floats never travel
// through text, which is what keeps durable state byte-exact). The Decoder is
// sticky-error and never panics on arbitrary bytes (pinned by FuzzWireFrame
// and FuzzWireBatch).
//
// The package depends only on the standard library and rfid/api, so the
// client SDK can vendor it together with the API types.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// DefaultMaxFramePayload caps a frame payload when the caller does not choose
// a limit (8 MiB, matching the HTTP surface's default body cap).
const DefaultMaxFramePayload = 8 << 20

// frameHeaderSize is the fixed length+CRC prefix of every frame.
const frameHeaderSize = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Framing errors. ErrShortFrame and ErrFrameCRC are the two shapes a torn
// tail can take (a crash mid-append cuts a frame short, or leaves a full-size
// frame whose payload bytes never all hit the disk); WAL replay treats both
// as a clean end of log in the final segment and as corruption anywhere else.
var (
	// ErrShortFrame: the buffer ends inside a frame header or payload.
	ErrShortFrame = errors.New("wire: short frame")
	// ErrFrameCRC: the payload does not match its checksum.
	ErrFrameCRC = errors.New("wire: frame crc mismatch")
)

// AppendFrame appends one framed payload to dst and returns the extended
// slice.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// NextFrame splits the first frame off data, returning its payload (a
// subslice of data, CRC-verified) and the remaining bytes. An empty data
// yields (nil, nil, nil) — the clean end of a buffer. A truncated frame
// returns ErrShortFrame, a corrupted one ErrFrameCRC.
func NextFrame(data []byte) (payload, rest []byte, err error) {
	if len(data) == 0 {
		return nil, nil, nil
	}
	if len(data) < frameHeaderSize {
		return nil, data, ErrShortFrame
	}
	n := int(binary.LittleEndian.Uint32(data[0:4]))
	want := binary.LittleEndian.Uint32(data[4:8])
	if len(data)-frameHeaderSize < n {
		return nil, data, ErrShortFrame
	}
	payload = data[frameHeaderSize : frameHeaderSize+n]
	if crc32.Checksum(payload, crcTable) != want {
		return nil, data, ErrFrameCRC
	}
	return payload, data[frameHeaderSize+n:], nil
}

// FrameReader reads frames off a byte stream (the streaming ingest
// connection). The payload returned by Next is valid only until the following
// Next call: the buffer is reused, which is what keeps the server's decode
// path allocation-free in steady state.
type FrameReader struct {
	r   io.Reader
	max int
	hdr [frameHeaderSize]byte
	buf []byte
}

// NewFrameReader returns a frame reader over r; maxPayload caps a single
// frame (<= 0 selects DefaultMaxFramePayload). The cap is a memory-safety
// bound on untrusted length prefixes, not a protocol constant — both ends of
// a stream learn the effective limit from the handshake.
func NewFrameReader(r io.Reader, maxPayload int) *FrameReader {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxFramePayload
	}
	return &FrameReader{r: r, max: maxPayload}
}

// Next reads one frame and returns its CRC-verified payload. io.EOF surfaces
// only at a clean frame boundary; a connection cut mid-frame returns
// io.ErrUnexpectedEOF.
func (fr *FrameReader) Next() ([]byte, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: connection cut inside a frame header", ErrShortFrame)
		}
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(fr.hdr[0:4]))
	want := binary.LittleEndian.Uint32(fr.hdr[4:8])
	if n > fr.max {
		return nil, fmt.Errorf("wire: frame payload %d bytes exceeds the %d-byte limit", n, fr.max)
	}
	if cap(fr.buf) < n {
		fr.buf = make([]byte, n)
	}
	buf := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: connection cut inside a frame payload", ErrShortFrame)
		}
		return nil, err
	}
	if crc32.Checksum(buf, crcTable) != want {
		return nil, ErrFrameCRC
	}
	return buf, nil
}

// Encoder appends primitive values to a growing byte buffer. The zero value
// is ready to use; Reset keeps the capacity, so a long-lived encoder (one per
// stream connection) stops allocating once warm.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset empties the encoder, retaining the underlying buffer.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Varint appends a signed varint.
func (e *Encoder) Varint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Int appends an int as a signed varint.
func (e *Encoder) Int(v int) { e.Varint(int64(v)) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Float64 appends the IEEE-754 bit pattern of v (8 bytes, little endian).
func (e *Encoder) Float64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Decoder reads primitive values back from a payload. Errors are sticky: the
// first malformed read poisons the decoder, every later read returns zero
// values, and Err reports the failure — callers decode a whole message and
// check once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// Reset points the decoder at a new payload, clearing any sticky error. A
// long-lived decoder (one per stream connection) is reused across frames.
func (d *Decoder) Reset(data []byte) {
	d.buf, d.off, d.err = data, 0, nil
}

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of undecoded bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format+" (offset %d)", append(args, d.off)...)
	}
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.off += n
	return v
}

// Varint reads a signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.off += n
	return v
}

// Int reads an int encoded with Encoder.Int.
func (d *Decoder) Int() int { return int(d.Varint()) }

// Bool reads a bool.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.buf) {
		d.fail("truncated bool")
		return false
	}
	b := d.buf[d.off]
	d.off++
	if b > 1 {
		d.fail("invalid bool byte %d", b)
		return false
	}
	return b == 1
}

// Float64 reads an IEEE-754 bit pattern.
func (d *Decoder) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("truncated float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

// String reads a length-prefixed string, allocating a copy. The length is
// validated against the remaining payload, so corrupted prefixes cannot
// trigger huge allocations.
func (d *Decoder) String() string { return string(d.StringBytes()) }

// StringBytes reads a length-prefixed string WITHOUT copying: the returned
// slice aliases the decoder's buffer and is valid only as long as that buffer
// is. The server's stream decode path hands these borrowed bytes to a tag
// intern table, which is what makes steady-state decode allocation-free.
func (d *Decoder) StringBytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail("string length %d exceeds remaining %d bytes", n, d.Remaining())
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

// SliceLen reads a length prefix and validates it against the remaining
// payload assuming each element occupies at least minElemBytes (pass 1 for
// variable-size elements) — the allocation guard every slice decode goes
// through.
func (d *Decoder) SliceLen(minElemBytes int) int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if n > uint64(d.Remaining()/minElemBytes) {
		d.fail("slice length %d exceeds remaining payload", n)
		return 0
	}
	return int(n)
}
