package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"

	"repro/rfid/api"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	var e Encoder
	e.Uvarint(0)
	e.Uvarint(1 << 40)
	e.Varint(-77)
	e.Int(math.MaxInt32)
	e.Bool(true)
	e.Bool(false)
	e.Float64(-3.25)
	e.Float64(math.Inf(1))
	e.String("")
	e.String("tag-α")

	var d Decoder
	d.Reset(e.Bytes())
	if got := d.Uvarint(); got != 0 {
		t.Errorf("uvarint 0: got %d", got)
	}
	if got := d.Uvarint(); got != 1<<40 {
		t.Errorf("uvarint 2^40: got %d", got)
	}
	if got := d.Varint(); got != -77 {
		t.Errorf("varint -77: got %d", got)
	}
	if got := d.Int(); got != math.MaxInt32 {
		t.Errorf("int: got %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("bool round trip failed")
	}
	if got := d.Float64(); got != -3.25 {
		t.Errorf("float64: got %v", got)
	}
	if got := d.Float64(); !math.IsInf(got, 1) {
		t.Errorf("float64 +inf: got %v", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("empty string: got %q", got)
	}
	if got := d.String(); got != "tag-α" {
		t.Errorf("string: got %q", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decode error: %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining %d bytes", d.Remaining())
	}
}

func TestDecoderStickyError(t *testing.T) {
	var d Decoder
	d.Reset([]byte{0x80}) // truncated uvarint
	_ = d.Uvarint()
	if d.Err() == nil {
		t.Fatal("want error on truncated uvarint")
	}
	first := d.Err()
	// Every later read is a zero value and the error stays the first one.
	if d.Int() != 0 || d.Bool() || d.Float64() != 0 || d.String() != "" {
		t.Error("poisoned decoder returned non-zero values")
	}
	if d.Err() != first {
		t.Error("sticky error was replaced")
	}
	// Reset clears the poison.
	d.Reset([]byte{7})
	if got := d.Uvarint(); got != 7 || d.Err() != nil {
		t.Errorf("after Reset: got %d err %v", got, d.Err())
	}
}

func TestDecoderGuards(t *testing.T) {
	var e Encoder
	e.Uvarint(1 << 50) // absurd length prefix
	var d Decoder
	d.Reset(e.Bytes())
	if d.StringBytes() != nil || d.Err() == nil {
		t.Error("string length guard did not trip")
	}
	d.Reset(e.Bytes())
	if d.SliceLen(2) != 0 || d.Err() == nil {
		t.Error("slice length guard did not trip")
	}
	d.Reset([]byte{2}) // bool byte > 1
	d.Bool()
	if d.Err() == nil {
		t.Error("bool byte guard did not trip")
	}
}

func TestFrameRoundTripAndTornTail(t *testing.T) {
	var buf []byte
	buf = AppendFrame(buf, []byte("alpha"))
	buf = AppendFrame(buf, nil)
	buf = AppendFrame(buf, []byte("gamma"))

	var got []string
	rest := buf
	for {
		payload, next, err := NextFrame(rest)
		if err != nil {
			t.Fatalf("NextFrame: %v", err)
		}
		if payload == nil && next == nil {
			break
		}
		got = append(got, string(payload))
		rest = next
	}
	if !reflect.DeepEqual(got, []string{"alpha", "", "gamma"}) {
		t.Fatalf("frames: %q", got)
	}

	// Every strict prefix that cuts a frame yields ErrShortFrame at that
	// frame, never a panic or a bogus decode.
	if _, _, err := NextFrame(buf[:3]); !errors.Is(err, ErrShortFrame) {
		t.Errorf("cut header: got %v", err)
	}
	if _, _, err := NextFrame(buf[:10]); !errors.Is(err, ErrShortFrame) {
		t.Errorf("cut payload: got %v", err)
	}
	// Flip a payload byte: CRC mismatch.
	bad := bytes.Clone(buf)
	bad[9] ^= 0xff
	if _, _, err := NextFrame(bad); !errors.Is(err, ErrFrameCRC) {
		t.Errorf("corrupt payload: got %v", err)
	}
}

func TestFrameReader(t *testing.T) {
	var buf []byte
	buf = AppendFrame(buf, []byte("one"))
	buf = AppendFrame(buf, []byte("two-longer"))

	fr := NewFrameReader(bytes.NewReader(buf), 0)
	p, err := fr.Next()
	if err != nil || string(p) != "one" {
		t.Fatalf("frame 1: %q %v", p, err)
	}
	p, err = fr.Next()
	if err != nil || string(p) != "two-longer" {
		t.Fatalf("frame 2: %q %v", p, err)
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("clean end: got %v", err)
	}

	// A connection cut mid-frame is ErrShortFrame, not io.EOF.
	fr = NewFrameReader(bytes.NewReader(buf[:5]), 0)
	if _, err := fr.Next(); !errors.Is(err, ErrShortFrame) {
		t.Errorf("cut header: got %v", err)
	}
	fr = NewFrameReader(bytes.NewReader(buf[:9]), 0)
	if _, err := fr.Next(); !errors.Is(err, ErrShortFrame) {
		t.Errorf("cut payload: got %v", err)
	}

	// The payload cap rejects oversized length prefixes before allocating.
	big := AppendFrame(nil, make([]byte, 100))
	fr = NewFrameReader(bytes.NewReader(big), 10)
	if _, err := fr.Next(); err == nil {
		t.Error("oversized frame accepted")
	}
}

func testBatch() APIBatch {
	return APIBatch{
		Readings: []api.Reading{
			{Time: 3, Tag: "obj-1"},
			{Time: 3, Tag: "shelf-a"},
			{Time: 4, Tag: ""},
		},
		Locations: []api.LocationReport{
			{Time: 3, X: 1.5, Y: -2, Z: 0.25, Phi: 0.5, HasPhi: true},
			{Time: 4, X: 0, Y: 0, Z: 0},
		},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	in := testBatch()
	var e Encoder
	AppendBatch(&e, in)
	var d Decoder
	d.Reset(e.Bytes())
	out, err := DecodeAPIBatch(&d)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", out, in)
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining %d bytes", d.Remaining())
	}

	// An empty batch round-trips too (both counts zero).
	e.Reset()
	AppendBatch(&e, APIBatch{})
	d.Reset(e.Bytes())
	out, err = DecodeAPIBatch(&d)
	if err != nil || len(out.Readings) != 0 || len(out.Locations) != 0 {
		t.Fatalf("empty batch: %+v %v", out, err)
	}
}

func TestBatchFrame(t *testing.T) {
	in := testBatch()
	var e Encoder
	AppendBatchFrame(&e, 42, in)
	var d Decoder
	d.Reset(e.Bytes())
	if kind := d.Uvarint(); kind != KindBatch {
		t.Fatalf("kind: got %d", kind)
	}
	if seq := d.Uvarint(); seq != 42 {
		t.Fatalf("seq: got %d", seq)
	}
	out, err := DecodeAPIBatch(&d)
	if err != nil || !reflect.DeepEqual(in, out) {
		t.Fatalf("body: %+v %v", out, err)
	}
}

func TestControlFrameRoundTrips(t *testing.T) {
	var e Encoder
	var d Decoder

	hello := api.StreamHello{Version: ProtoVersion, ResumeAfter: 17, Window: 64, MaxFrameBytes: 1 << 20}
	e.Reset()
	AppendHello(&e, hello)
	d.Reset(e.Bytes())
	if kind := d.Uvarint(); kind != KindHello {
		t.Fatalf("hello kind: %d", kind)
	}
	if got, err := DecodeHello(&d); err != nil || got != hello {
		t.Fatalf("hello: %+v %v", got, err)
	}

	// A hello from a future protocol version is rejected.
	e.Reset()
	AppendHello(&e, api.StreamHello{Version: ProtoVersion + 1})
	d.Reset(e.Bytes())
	d.Uvarint()
	if _, err := DecodeHello(&d); err == nil {
		t.Fatal("future protocol version accepted")
	}

	ack := api.StreamAck{UpTo: 99, Durable: true, Watermark: -1, Window: 8}
	e.Reset()
	AppendAck(&e, ack)
	d.Reset(e.Bytes())
	if kind := d.Uvarint(); kind != KindAck {
		t.Fatalf("ack kind: %d", kind)
	}
	if got, err := DecodeAck(&d); err != nil || got != ack {
		t.Fatalf("ack: %+v %v", got, err)
	}

	se := api.StreamError{Code: api.ErrUnavailable, Message: "queue full", RetryAfterMS: 250}
	e.Reset()
	AppendError(&e, se)
	d.Reset(e.Bytes())
	if kind := d.Uvarint(); kind != KindError {
		t.Fatalf("error kind: %d", kind)
	}
	if got, err := DecodeError(&d); err != nil || got != se {
		t.Fatalf("error: %+v %v", got, err)
	}

	e.Reset()
	AppendClose(&e)
	d.Reset(e.Bytes())
	if kind := d.Uvarint(); kind != KindClose || d.Remaining() != 0 {
		t.Fatalf("close frame: kind %d remaining %d", kind, d.Remaining())
	}
}

func TestEncoderLenReset(t *testing.T) {
	var e Encoder
	if e.Len() != 0 {
		t.Fatalf("fresh encoder Len = %d", e.Len())
	}
	e.Uvarint(300)
	if e.Len() != len(e.Bytes()) || e.Len() == 0 {
		t.Fatalf("Len = %d, Bytes = %d", e.Len(), len(e.Bytes()))
	}
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("Len after Reset = %d", e.Len())
	}
}
