package wire

import (
	"fmt"

	"repro/rfid/api"
)

// This file defines the single canonical encoding of a record batch — the
// payload tail both a WAL RecBatch record and a stream batch frame carry —
// plus the control frames of the streaming ingest protocol.
//
// Batch body layout:
//
//	uvarint numReadings
//	repeated { varint time, string tag }
//	uvarint numLocations
//	repeated { varint time, f64 x, f64 y, f64 z, f64 phi, bool hasPhi }

// ProtoVersion is the streaming ingest protocol version carried in the hello
// frame.
const ProtoVersion = 1

// Stream frame kinds: the first uvarint of every frame payload on a stream
// connection.
const (
	// KindHello (server -> client): version, resume point, window, frame cap.
	KindHello = 1
	// KindBatch (client -> server): uvarint sequence number, then batch body.
	KindBatch = 2
	// KindAck (server -> client): cumulative durable acknowledgement.
	KindAck = 3
	// KindError (server -> client): terminal structured error.
	KindError = 4
	// KindClose (client -> server): graceful end of stream (empty body).
	KindClose = 5
)

// BatchSource is the write side of the batch codec: any container of raw
// records can be encoded without first converting into an intermediate
// representation.
type BatchSource interface {
	NumReadings() int
	// ReadingAt returns the i-th raw reading.
	ReadingAt(i int) (time int, tag string)
	NumLocations() int
	// LocationAt returns the i-th raw reader-location report.
	LocationAt(i int) (time int, x, y, z, phi float64, hasPhi bool)
}

// BatchSink is the read side: DecodeBatch streams records into it one at a
// time, so the decoder allocates nothing on behalf of the caller. The tag
// bytes are BORROWED — they alias the decoder's buffer and are only valid for
// the duration of the call; a sink that keeps tags must copy (or intern)
// them.
type BatchSink interface {
	Reading(time int, tag []byte)
	Location(time int, x, y, z, phi float64, hasPhi bool)
}

// AppendBatch encodes src's records onto e in the canonical batch layout.
func AppendBatch(e *Encoder, src BatchSource) {
	nr := src.NumReadings()
	e.Uvarint(uint64(nr))
	for i := 0; i < nr; i++ {
		t, tag := src.ReadingAt(i)
		e.Int(t)
		e.String(tag)
	}
	nl := src.NumLocations()
	e.Uvarint(uint64(nl))
	for i := 0; i < nl; i++ {
		t, x, y, z, phi, hasPhi := src.LocationAt(i)
		e.Int(t)
		e.Float64(x)
		e.Float64(y)
		e.Float64(z)
		e.Float64(phi)
		e.Bool(hasPhi)
	}
}

// DecodeBatch decodes a batch body from d, streaming each record into sink.
// It consumes exactly the batch body; trailing-byte validation is the
// caller's business (a WAL record ends here, a stream frame too).
func DecodeBatch(d *Decoder, sink BatchSink) error {
	nr := d.SliceLen(2) // >= varint time + empty-string prefix per reading
	for i := 0; i < nr; i++ {
		t := d.Int()
		tag := d.StringBytes()
		if d.Err() != nil {
			return d.Err()
		}
		sink.Reading(t, tag)
	}
	nl := d.SliceLen(34) // varint time + 4 float64s + bool per location
	for i := 0; i < nl; i++ {
		t := d.Int()
		x := d.Float64()
		y := d.Float64()
		z := d.Float64()
		phi := d.Float64()
		hasPhi := d.Bool()
		if d.Err() != nil {
			return d.Err()
		}
		sink.Location(t, x, y, z, phi, hasPhi)
	}
	return d.Err()
}

// APIBatch adapts the public DTO batch shape (api.Reading/api.LocationReport
// slices) to BatchSource, for callers that already hold DTOs — the SDK's
// StreamIngester and tests.
type APIBatch struct {
	Readings  []api.Reading
	Locations []api.LocationReport
}

// NumReadings implements BatchSource.
func (b APIBatch) NumReadings() int { return len(b.Readings) }

// ReadingAt implements BatchSource.
func (b APIBatch) ReadingAt(i int) (int, string) {
	return b.Readings[i].Time, b.Readings[i].Tag
}

// NumLocations implements BatchSource.
func (b APIBatch) NumLocations() int { return len(b.Locations) }

// LocationAt implements BatchSource.
func (b APIBatch) LocationAt(i int) (int, float64, float64, float64, float64, bool) {
	l := b.Locations[i]
	return l.Time, l.X, l.Y, l.Z, l.Phi, l.HasPhi
}

// apiSink collects decoded records back into DTO slices (the inverse of
// APIBatch), used by tests and anywhere a decoded copy is wanted.
type apiSink struct{ b *APIBatch }

func (s apiSink) Reading(t int, tag []byte) {
	s.b.Readings = append(s.b.Readings, api.Reading{Time: t, Tag: string(tag)})
}

func (s apiSink) Location(t int, x, y, z, phi float64, hasPhi bool) {
	s.b.Locations = append(s.b.Locations, api.LocationReport{Time: t, X: x, Y: y, Z: z, Phi: phi, HasPhi: hasPhi})
}

// DecodeAPIBatch decodes a batch body into fresh DTO slices. The convenience
// form of DecodeBatch — allocating, so not for the server's hot path.
func DecodeAPIBatch(d *Decoder) (APIBatch, error) {
	var b APIBatch
	err := DecodeBatch(d, apiSink{&b})
	return b, err
}

// AppendBatchFrame encodes a complete stream batch frame payload (kind,
// sequence number, batch body) onto e.
func AppendBatchFrame(e *Encoder, seq uint64, src BatchSource) {
	e.Uvarint(KindBatch)
	e.Uvarint(seq)
	AppendBatch(e, src)
}

// AppendHello encodes a hello frame payload onto e.
func AppendHello(e *Encoder, h api.StreamHello) {
	e.Uvarint(KindHello)
	e.Uvarint(uint64(h.Version))
	e.Uvarint(h.ResumeAfter)
	e.Uvarint(uint64(h.Window))
	e.Uvarint(uint64(h.MaxFrameBytes))
}

// DecodeHello decodes a hello frame body (the kind uvarint already consumed).
func DecodeHello(d *Decoder) (api.StreamHello, error) {
	h := api.StreamHello{
		Version:       int(d.Uvarint()),
		ResumeAfter:   d.Uvarint(),
		Window:        int(d.Uvarint()),
		MaxFrameBytes: int(d.Uvarint()),
	}
	if err := d.Err(); err != nil {
		return api.StreamHello{}, err
	}
	if h.Version != ProtoVersion {
		return api.StreamHello{}, fmt.Errorf("wire: unsupported stream protocol version %d (want %d)", h.Version, ProtoVersion)
	}
	return h, nil
}

// AppendAck encodes an ack frame payload onto e.
func AppendAck(e *Encoder, a api.StreamAck) {
	e.Uvarint(KindAck)
	e.Uvarint(a.UpTo)
	e.Bool(a.Durable)
	e.Int(a.Watermark)
	e.Uvarint(uint64(a.Window))
}

// DecodeAck decodes an ack frame body (the kind uvarint already consumed).
func DecodeAck(d *Decoder) (api.StreamAck, error) {
	a := api.StreamAck{
		UpTo:      d.Uvarint(),
		Durable:   d.Bool(),
		Watermark: d.Int(),
		Window:    int(d.Uvarint()),
	}
	return a, d.Err()
}

// AppendError encodes a terminal error frame payload onto e.
func AppendError(e *Encoder, se api.StreamError) {
	e.Uvarint(KindError)
	e.String(se.Code)
	e.String(se.Message)
	e.Uvarint(uint64(se.RetryAfterMS))
}

// DecodeError decodes an error frame body (the kind uvarint already
// consumed).
func DecodeError(d *Decoder) (api.StreamError, error) {
	se := api.StreamError{
		Code:         d.String(),
		Message:      d.String(),
		RetryAfterMS: int(d.Uvarint()),
	}
	return se, d.Err()
}

// AppendClose encodes the graceful end-of-stream frame payload onto e.
func AppendClose(e *Encoder) { e.Uvarint(KindClose) }
