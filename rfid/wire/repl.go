package wire

// Replication protocol frames. A follower connects with POST /v1/replicate
// (an upgrade handshake mirroring the streaming-ingest one, Upgrade token
// ReplUpgrade), sends a ReplHello carrying a resume cursor per session, and
// the primary responds with, per session: a ReplSession announcement (with
// the session manifest and checkpoint size when the follower must bootstrap),
// ReplSnapshot chunks of the checkpoint image, then a stream of ReplRecord
// frames — raw WAL record payloads stamped with the exact (segment, offset)
// they occupy in the primary's log, so the follower can mirror the log
// byte-for-byte. The follower answers with cumulative ReplAck frames; the
// primary fills idle gaps with ReplHeartbeat so the follower can measure
// staleness while fully caught up.
//
// These frames are server-to-server protocol, not public API, so their types
// live here rather than in rfid/api. Like every frame on a wire connection,
// the first uvarint of the payload is the kind.

import "fmt"

// ReplUpgrade is the Upgrade header token of the replication handshake.
const ReplUpgrade = "rfid-repl/1"

// ReplProtoVersion is the replication protocol version carried in the hello.
const ReplProtoVersion = 1

// Replication frame kinds (continuing the stream-kind space, so a frame can
// never be misread across the two connection types).
const (
	// KindReplHello (follower -> primary): version, follower name, resume
	// cursors.
	KindReplHello = 6
	// KindReplSession (primary -> follower): session announcement; a non-zero
	// SnapshotBytes means "bootstrap: snapshot chunks follow".
	KindReplSession = 7
	// KindReplSnapshot (primary -> follower): one chunk of a checkpoint image.
	KindReplSnapshot = 8
	// KindReplRecord (primary -> follower): one WAL record payload at its
	// exact log position.
	KindReplRecord = 9
	// KindReplAck (follower -> primary): cumulative applied positions.
	KindReplAck = 10
	// KindReplHeartbeat (primary -> follower): liveness + staleness clock
	// while there is nothing to ship.
	KindReplHeartbeat = 11
)

// ReplCursor is one session's replication position: the next WAL byte the
// follower needs (in a hello) or has durably applied through (in an ack).
type ReplCursor struct {
	// SID is the session id ("" is the default session).
	SID string
	// Seg and Off address the next unread byte in the session's WAL.
	Seg uint64
	Off int64
	// AppliedEpoch is the follower's applied engine epoch at this position
	// (acks only; -1 before any epoch sealed).
	AppliedEpoch int64
}

// ReplHello is the follower's opening frame.
type ReplHello struct {
	// Version is ReplProtoVersion.
	Version int
	// Name identifies the follower in the primary's logs and metrics.
	Name string
	// Cursors is the follower's resume position for every session it already
	// mirrors; sessions absent here are bootstrapped from a checkpoint.
	Cursors []ReplCursor
}

// ReplSession announces a session the primary is about to ship.
type ReplSession struct {
	// SID is the session id ("" is the default session).
	SID string
	// Manifest is the session's manifest JSON (empty for the default
	// session, whose engine configuration comes from the process flags).
	Manifest string
	// SnapshotBytes is the total size of the checkpoint image about to be
	// chunked in ReplSnapshot frames; 0 means no bootstrap is needed (the
	// follower's cursor was accepted, or the session has no checkpoint yet
	// and shipping starts from the oldest WAL segment).
	SnapshotBytes int64
	// Seg and Off are where record shipping will start for this session.
	Seg uint64
	Off int64
}

// ReplSnapshot carries one chunk of a checkpoint image during bootstrap.
type ReplSnapshot struct {
	// SID is the session being bootstrapped.
	SID string
	// Last marks the final chunk.
	Last bool
	// Chunk is the next run of image bytes. On decode it BORROWS the
	// decoder's buffer — valid only until the next frame is read.
	Chunk []byte
}

// ReplRecord ships one WAL record payload at its exact position in the
// primary's log.
type ReplRecord struct {
	// SID is the session the record belongs to.
	SID string
	// Seg and Off are the byte position of the record's frame in the
	// session's WAL — the follower mirrors the frame at the same position.
	Seg uint64
	Off int64
	// ShipNanos is the primary's wall clock when the record was shipped,
	// the follower's replication-lag measurement.
	ShipNanos int64
	// Payload is the raw record payload (unframed). On decode it BORROWS the
	// decoder's buffer — valid only until the next frame is read.
	Payload []byte
}

// ReplAck is the follower's cumulative progress report.
type ReplAck struct {
	// Cursors holds one entry per session with new progress.
	Cursors []ReplCursor
}

// ReplHeartbeat keeps an idle connection measurably alive.
type ReplHeartbeat struct {
	// Nanos is the primary's wall clock at send time.
	Nanos int64
}

// AppendReplHello encodes a hello frame payload onto e.
func AppendReplHello(e *Encoder, h ReplHello) {
	e.Uvarint(KindReplHello)
	e.Uvarint(uint64(h.Version))
	e.String(h.Name)
	e.Uvarint(uint64(len(h.Cursors)))
	for _, c := range h.Cursors {
		e.String(c.SID)
		e.Uvarint(c.Seg)
		e.Varint(c.Off)
	}
}

// DecodeReplHello decodes a hello frame body (kind already consumed).
func DecodeReplHello(d *Decoder) (ReplHello, error) {
	h := ReplHello{
		Version: int(d.Uvarint()),
		Name:    d.String(),
	}
	n := d.SliceLen(3) // >= empty sid + seg + off per cursor
	for i := 0; i < n; i++ {
		c := ReplCursor{SID: d.String(), Seg: d.Uvarint(), Off: d.Varint()}
		if d.Err() != nil {
			break
		}
		h.Cursors = append(h.Cursors, c)
	}
	if err := d.Err(); err != nil {
		return ReplHello{}, err
	}
	if h.Version != ReplProtoVersion {
		return ReplHello{}, fmt.Errorf("wire: unsupported replication protocol version %d (want %d)", h.Version, ReplProtoVersion)
	}
	return h, nil
}

// AppendReplSession encodes a session announcement onto e.
func AppendReplSession(e *Encoder, s ReplSession) {
	e.Uvarint(KindReplSession)
	e.String(s.SID)
	e.String(s.Manifest)
	e.Varint(s.SnapshotBytes)
	e.Uvarint(s.Seg)
	e.Varint(s.Off)
}

// DecodeReplSession decodes a session announcement (kind already consumed).
func DecodeReplSession(d *Decoder) (ReplSession, error) {
	s := ReplSession{
		SID:           d.String(),
		Manifest:      d.String(),
		SnapshotBytes: d.Varint(),
		Seg:           d.Uvarint(),
		Off:           d.Varint(),
	}
	return s, d.Err()
}

// AppendReplSnapshot encodes a snapshot chunk onto e.
func AppendReplSnapshot(e *Encoder, s ReplSnapshot) {
	e.Uvarint(KindReplSnapshot)
	e.String(s.SID)
	e.Bool(s.Last)
	e.Uvarint(uint64(len(s.Chunk)))
	e.buf = append(e.buf, s.Chunk...)
}

// DecodeReplSnapshot decodes a snapshot chunk (kind already consumed). Chunk
// borrows the decoder's buffer.
func DecodeReplSnapshot(d *Decoder) (ReplSnapshot, error) {
	s := ReplSnapshot{
		SID:   d.String(),
		Last:  d.Bool(),
		Chunk: d.StringBytes(),
	}
	return s, d.Err()
}

// AppendReplRecord encodes a shipped WAL record onto e.
func AppendReplRecord(e *Encoder, r ReplRecord) {
	e.Uvarint(KindReplRecord)
	e.String(r.SID)
	e.Uvarint(r.Seg)
	e.Varint(r.Off)
	e.Varint(r.ShipNanos)
	e.Uvarint(uint64(len(r.Payload)))
	e.buf = append(e.buf, r.Payload...)
}

// DecodeReplRecord decodes a shipped WAL record (kind already consumed).
// Payload borrows the decoder's buffer.
func DecodeReplRecord(d *Decoder) (ReplRecord, error) {
	r := ReplRecord{
		SID:       d.String(),
		Seg:       d.Uvarint(),
		Off:       d.Varint(),
		ShipNanos: d.Varint(),
		Payload:   d.StringBytes(),
	}
	return r, d.Err()
}

// AppendReplAck encodes a cumulative ack onto e.
func AppendReplAck(e *Encoder, a ReplAck) {
	e.Uvarint(KindReplAck)
	e.Uvarint(uint64(len(a.Cursors)))
	for _, c := range a.Cursors {
		e.String(c.SID)
		e.Uvarint(c.Seg)
		e.Varint(c.Off)
		e.Varint(c.AppliedEpoch)
	}
}

// DecodeReplAck decodes a cumulative ack (kind already consumed).
func DecodeReplAck(d *Decoder) (ReplAck, error) {
	var a ReplAck
	n := d.SliceLen(4) // >= empty sid + seg + off + epoch per cursor
	for i := 0; i < n; i++ {
		c := ReplCursor{
			SID:          d.String(),
			Seg:          d.Uvarint(),
			Off:          d.Varint(),
			AppliedEpoch: d.Varint(),
		}
		if d.Err() != nil {
			break
		}
		a.Cursors = append(a.Cursors, c)
	}
	return a, d.Err()
}

// AppendReplHeartbeat encodes a heartbeat onto e.
func AppendReplHeartbeat(e *Encoder, h ReplHeartbeat) {
	e.Uvarint(KindReplHeartbeat)
	e.Varint(h.Nanos)
}

// DecodeReplHeartbeat decodes a heartbeat (kind already consumed).
func DecodeReplHeartbeat(d *Decoder) (ReplHeartbeat, error) {
	h := ReplHeartbeat{Nanos: d.Varint()}
	return h, d.Err()
}
