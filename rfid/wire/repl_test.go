package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// decodeKind resets d over payload and consumes the kind uvarint.
func decodeKind(t *testing.T, d *Decoder, payload []byte, want uint64) {
	t.Helper()
	d.Reset(payload)
	if k := d.Uvarint(); k != want {
		t.Fatalf("kind %d, want %d", k, want)
	}
}

func TestReplHelloRoundTrip(t *testing.T) {
	in := ReplHello{
		Version: ReplProtoVersion,
		Name:    "replica-1",
		Cursors: []ReplCursor{
			{SID: "", Seg: 3, Off: 8},
			{SID: "belt", Seg: 17, Off: 4096},
		},
	}
	var e Encoder
	AppendReplHello(&e, in)
	var d Decoder
	decodeKind(t, &d, e.Bytes(), KindReplHello)
	out, err := DecodeReplHello(&d)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in %+v\nout %+v", in, out)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d trailing bytes", d.Remaining())
	}

	// A wrong version is rejected at decode.
	e.Reset()
	AppendReplHello(&e, ReplHello{Version: 99})
	decodeKind(t, &d, e.Bytes(), KindReplHello)
	if _, err := DecodeReplHello(&d); err == nil {
		t.Fatal("version 99 accepted")
	}
}

func TestReplSessionRoundTrip(t *testing.T) {
	in := ReplSession{
		SID:           "belt",
		Manifest:      `{"object_particles":80}`,
		SnapshotBytes: 123456,
		Seg:           9,
		Off:           8,
	}
	var e Encoder
	AppendReplSession(&e, in)
	var d Decoder
	decodeKind(t, &d, e.Bytes(), KindReplSession)
	out, err := DecodeReplSession(&d)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in %+v\nout %+v", in, out)
	}
}

func TestReplSnapshotRoundTrip(t *testing.T) {
	in := ReplSnapshot{SID: "", Last: true, Chunk: []byte{1, 2, 3, 0, 255}}
	var e Encoder
	AppendReplSnapshot(&e, in)
	var d Decoder
	decodeKind(t, &d, e.Bytes(), KindReplSnapshot)
	out, err := DecodeReplSnapshot(&d)
	if err != nil {
		t.Fatal(err)
	}
	if out.SID != in.SID || out.Last != in.Last || !bytes.Equal(out.Chunk, in.Chunk) {
		t.Fatalf("round trip:\n in %+v\nout %+v", in, out)
	}
}

func TestReplRecordRoundTrip(t *testing.T) {
	in := ReplRecord{
		SID:       "belt",
		Seg:       4,
		Off:       1032,
		ShipNanos: 1712345678901234567,
		Payload:   []byte("record payload bytes"),
	}
	var e Encoder
	AppendReplRecord(&e, in)
	var d Decoder
	decodeKind(t, &d, e.Bytes(), KindReplRecord)
	out, err := DecodeReplRecord(&d)
	if err != nil {
		t.Fatal(err)
	}
	if out.SID != in.SID || out.Seg != in.Seg || out.Off != in.Off ||
		out.ShipNanos != in.ShipNanos || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip:\n in %+v\nout %+v", in, out)
	}
}

func TestReplAckRoundTrip(t *testing.T) {
	in := ReplAck{Cursors: []ReplCursor{
		{SID: "", Seg: 2, Off: 512, AppliedEpoch: -1},
		{SID: "belt", Seg: 7, Off: 8, AppliedEpoch: 41},
	}}
	var e Encoder
	AppendReplAck(&e, in)
	var d Decoder
	decodeKind(t, &d, e.Bytes(), KindReplAck)
	out, err := DecodeReplAck(&d)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in %+v\nout %+v", in, out)
	}
}

func TestReplHeartbeatRoundTrip(t *testing.T) {
	in := ReplHeartbeat{Nanos: 987654321}
	var e Encoder
	AppendReplHeartbeat(&e, in)
	var d Decoder
	decodeKind(t, &d, e.Bytes(), KindReplHeartbeat)
	out, err := DecodeReplHeartbeat(&d)
	if err != nil {
		t.Fatal(err)
	}
	if in != out {
		t.Fatalf("round trip: in %+v out %+v", in, out)
	}
}

// TestReplDecodersNeverPanic drives every repl decoder over truncations of a
// valid frame — the sticky-error decoder must fail cleanly, not panic.
func TestReplDecodersNeverPanic(t *testing.T) {
	var e Encoder
	AppendReplRecord(&e, ReplRecord{SID: "s", Seg: 1, Off: 8, Payload: []byte("x")})
	full := append([]byte(nil), e.Bytes()...)
	for n := 0; n < len(full); n++ {
		var d Decoder
		d.Reset(full[:n])
		d.Uvarint() // kind (possibly truncated)
		_, _ = DecodeReplRecord(&d)
		d.Reset(full[:n])
		d.Uvarint()
		_, _ = DecodeReplHello(&d)
		d.Reset(full[:n])
		d.Uvarint()
		_, _ = DecodeReplAck(&d)
		d.Reset(full[:n])
		d.Uvarint()
		_, _ = DecodeReplSession(&d)
		d.Reset(full[:n])
		d.Uvarint()
		_, _ = DecodeReplSnapshot(&d)
		d.Reset(full[:n])
		d.Uvarint()
		_, _ = DecodeReplHeartbeat(&d)
	}
}
