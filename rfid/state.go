package rfid

import (
	"repro/internal/checkpoint"
	"repro/internal/stream"
)

// The Runner's checkpoint codec: driver bookkeeping (watermark, next epoch,
// late-drop counter), the buffered-but-unsealed epoch accumulators, the
// time-travel history ring and, through the Pipeline, the engine's full
// inference state. Because the buffered accumulators are included, a
// checkpoint is self-contained — recovery needs no write-ahead-log records
// from before the checkpoint was taken.

const runnerSection = "rfid.Runner"

// Fingerprint returns the stable hash of the runner's engine configuration;
// checkpoints record it and restore verifies it (see Pipeline.Fingerprint).
func (r *Runner) Fingerprint() uint64 { return r.pipe.Fingerprint() }

// SaveState appends the runner's full state to the encoder. Safe to call
// concurrently with Ingest/Advance (it takes the runner lock), though the
// serving layer checkpoints from its single engine goroutine anyway.
func (r *Runner) SaveState(e *checkpoint.Encoder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e.Section(runnerSection)
	e.Int(r.next)
	e.Int(r.mark)
	e.Int(r.late)
	e.Bool(r.closed)

	live := r.liveHistory()
	e.Uvarint(uint64(len(live)))
	for _, snap := range live {
		e.Int(snap.epoch)
		e.Uvarint(uint64(len(snap.events)))
		for _, ev := range snap.events {
			e.Int(ev.Time)
			e.String(string(ev.Tag))
			e.Vec3(ev.Loc)
			e.Vec3(ev.Stats.Variance)
			e.Int(ev.Stats.NumParticles)
			e.Bool(ev.Stats.Compressed)
		}
	}

	r.sync.SaveState(e)
	r.pipe.SaveState(e)
}

// RestoreState rebuilds the runner from a SaveState payload. The runner must
// be freshly constructed with a Config whose Fingerprint matches the payload
// producer's (the durability layer checks before calling); the runner's own
// HoldEpochs/HistoryEpochs may differ — they are serving policy, not
// inference state. Corrupt input errors, never panics.
func (r *Runner) RestoreState(d *checkpoint.Decoder) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	d.Section(runnerSection)
	next := d.Int()
	mark := d.Int()
	late := d.Int()
	closed := d.Bool()

	n := d.SliceLen(1)
	history := make([]epochSnapshot, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		snap := epochSnapshot{epoch: d.Int()}
		m := d.SliceLen(8)
		snap.events = make([]Event, 0, m)
		for j := 0; j < m && d.Err() == nil; j++ {
			ev := Event{
				Time: d.Int(),
				Tag:  stream.TagID(d.String()),
				Loc:  d.Vec3(),
			}
			ev.Stats.Variance = d.Vec3()
			ev.Stats.NumParticles = d.Int()
			ev.Stats.Compressed = d.Bool()
			snap.events = append(snap.events, ev)
		}
		history = append(history, snap)
	}

	freshSync := stream.NewSynchronizer()
	if err := d.Err(); err != nil {
		return err
	}
	if err := freshSync.RestoreState(d); err != nil {
		return err
	}
	if err := r.pipe.RestoreState(d); err != nil {
		return err
	}

	r.next = next
	r.mark = mark
	r.late = late
	r.closed = closed
	r.history = history
	r.histStart = 0
	// A restoring runner may retain fewer epochs than the checkpoint's
	// producer; evict down to its own cap.
	if r.histCap <= 0 {
		r.history = nil
	} else if over := len(r.history) - r.histCap; over > 0 {
		r.history = append([]epochSnapshot(nil), r.history[over:]...)
	}
	r.sync = freshSync
	return nil
}
