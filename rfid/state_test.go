package rfid_test

import (
	"reflect"
	"testing"

	"repro/internal/checkpoint"
	"repro/rfid"
)

// ingestByEpoch groups a trace's raw streams into per-epoch batches.
func ingestByEpoch(trace *rfid.Trace) (map[int][]rfid.Reading, map[int][]rfid.LocationReport, int) {
	readings, locations := rfid.RawStreams(trace)
	rByT := make(map[int][]rfid.Reading)
	lByT := make(map[int][]rfid.LocationReport)
	maxT := 0
	for _, r := range readings {
		rByT[r.Time] = append(rByT[r.Time], r)
		if r.Time > maxT {
			maxT = r.Time
		}
	}
	for _, l := range locations {
		lByT[l.Time] = append(lByT[l.Time], l)
		if l.Time > maxT {
			maxT = l.Time
		}
	}
	return rByT, lByT, maxT
}

// driveRunner ingests epochs [from, to) one batch at a time, advancing after
// each, and returns every emitted event.
func driveRunner(t *testing.T, r *rfid.Runner, rByT map[int][]rfid.Reading, lByT map[int][]rfid.LocationReport, from, to int) []rfid.Event {
	t.Helper()
	var all []rfid.Event
	for tt := from; tt < to; tt++ {
		r.Ingest(rByT[tt], lByT[tt])
		evs, err := r.Advance()
		if err != nil {
			t.Fatalf("advance at epoch %d: %v", tt, err)
		}
		all = append(all, evs...)
	}
	return all
}

// TestRunnerCheckpointRestoreEquivalence is the runner-level recovery
// property: a runner checkpointed mid-stream and restored into a fresh one
// (here with a different worker count) continues byte-identically — events,
// snapshots and the time-travel history ring all match an uninterrupted run.
func TestRunnerCheckpointRestoreEquivalence(t *testing.T) {
	trace := simulateSmall(t, 8, 11)
	rByT, lByT, maxT := ingestByEpoch(trace)
	cfg := runnerConfig(trace)
	rc := rfid.RunnerConfig{HistoryEpochs: 64}

	ref, err := rfid.NewRunner(cfg, rc)
	if err != nil {
		t.Fatal(err)
	}
	refEvents := driveRunner(t, ref, rByT, lByT, 0, maxT+1)

	split := maxT / 2
	a, err := rfid.NewRunner(cfg, rc)
	if err != nil {
		t.Fatal(err)
	}
	got := driveRunner(t, a, rByT, lByT, 0, split)

	enc := checkpoint.NewEncoder()
	a.SaveState(enc)
	if a.Fingerprint() == 0 {
		t.Fatal("zero fingerprint")
	}

	shardedCfg := cfg
	shardedCfg.Workers = 4
	shardedCfg.ShardCount = 8
	b, err := rfid.NewRunner(shardedCfg, rfid.RunnerConfig{HistoryEpochs: 64, Sharded: true})
	if err != nil {
		t.Fatal(err)
	}
	if b.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint not parallelism-portable")
	}
	if err := b.RestoreState(checkpoint.NewDecoder(enc.Bytes())); err != nil {
		t.Fatalf("restore: %v", err)
	}
	got = append(got, driveRunner(t, b, rByT, lByT, split, maxT+1)...)

	if !reflect.DeepEqual(got, refEvents) {
		t.Fatalf("event stream diverged after restore (%d vs %d events)", len(got), len(refEvents))
	}
	for _, id := range ref.Tracked() {
		wantLoc, wantSt, wantOK := ref.Snapshot(id)
		gotLoc, gotSt, gotOK := b.Snapshot(id)
		if wantOK != gotOK || wantLoc != gotLoc || wantSt != gotSt {
			t.Fatalf("snapshot for %s diverged after restore", id)
		}
	}

	// Time-travel history must agree epoch by epoch.
	refOld, refNew, refOK := ref.HistoryBounds()
	gotOld, gotNew, gotOK := b.HistoryBounds()
	if !refOK || !gotOK || refOld != gotOld || refNew != gotNew {
		t.Fatalf("history bounds diverged: [%d,%d]/%v vs [%d,%d]/%v", gotOld, gotNew, gotOK, refOld, refNew, refOK)
	}
	for ep := refOld; ep <= refNew; ep++ {
		want, wantOK := ref.HistoryEvents(ep)
		got, gotOK := b.HistoryEvents(ep)
		if wantOK != gotOK || !reflect.DeepEqual(got, want) {
			t.Fatalf("history at epoch %d diverged", ep)
		}
	}
}

// TestRunnerHistoryRing pins the bounded-retention and lookup behaviour of
// the time-travel ring.
func TestRunnerHistoryRing(t *testing.T) {
	trace := simulateSmall(t, 5, 3)
	rByT, lByT, maxT := ingestByEpoch(trace)
	const cap = 10
	r, err := rfid.NewRunner(runnerConfig(trace), rfid.RunnerConfig{HistoryEpochs: cap})
	if err != nil {
		t.Fatal(err)
	}
	driveRunner(t, r, rByT, lByT, 0, maxT+1)

	oldest, newest, ok := r.HistoryBounds()
	if !ok {
		t.Fatal("no history recorded")
	}
	if newest-oldest+1 > cap {
		t.Fatalf("ring retained %d epochs, cap %d", newest-oldest+1, cap)
	}
	if newest != maxT {
		t.Fatalf("newest history epoch %d, want %d", newest, maxT)
	}
	evs, ok := r.HistoryEvents(newest)
	if !ok || len(evs) == 0 {
		t.Fatalf("no events at newest epoch (ok=%v)", ok)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Tag < evs[i-1].Tag {
			t.Fatal("history events not in tag order")
		}
	}
	// Epochs evicted from the ring, and epochs never sealed, miss cleanly.
	if _, ok := r.HistoryEvents(oldest - 1); ok {
		t.Fatal("evicted epoch served")
	}
	if _, ok := r.HistoryEvents(newest + 100); ok {
		t.Fatal("future epoch served")
	}

	// History disabled: no ring, no bounds.
	r2, err := rfid.NewRunner(runnerConfig(trace), rfid.RunnerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	driveRunner(t, r2, rByT, lByT, 0, 5)
	if _, _, ok := r2.HistoryBounds(); ok {
		t.Fatal("history recorded while disabled")
	}
}

// TestRunnerSealTo pins the replay primitive: an explicit SealTo processes
// exactly the buffered epochs up to the horizon, like Flush but independent
// of the watermark.
func TestRunnerSealTo(t *testing.T) {
	trace := simulateSmall(t, 5, 7)
	rByT, lByT, _ := ingestByEpoch(trace)
	r, err := rfid.NewRunner(runnerConfig(trace), rfid.RunnerConfig{HoldEpochs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Huge hold: Advance seals nothing.
	for tt := 0; tt < 10; tt++ {
		r.Ingest(rByT[tt], lByT[tt])
	}
	if evs, err := r.Advance(); err != nil || len(evs) != 0 {
		t.Fatalf("advance sealed despite hold: %d events, err %v", len(evs), err)
	}
	if _, err := r.SealTo(4); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.NextEpoch != 5 {
		t.Fatalf("SealTo(4) advanced next to %d, want 5", st.NextEpoch)
	}
	if st.BufferedEpochs != 5 {
		t.Fatalf("SealTo(4) left %d buffered epochs, want 5", st.BufferedEpochs)
	}
}
