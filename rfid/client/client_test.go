package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/rfid"
	"repro/rfid/api"
	"repro/rfid/client"
)

// newTestServer starts a real serve.Server (default session over a small
// synthetic floor) behind httptest and returns a client pointed at it. The
// SDK itself depends only on rfid/api; the server side of the round-trip
// lives here, in the test binary.
func newTestServer(t *testing.T) *client.Client {
	t.Helper()
	world := rfid.NewWorld()
	world.AddShelf(rfid.Shelf{ID: "floor", Region: rfid.NewBBox(rfid.Vec3{}, rfid.Vec3{X: 40, Y: 40, Z: 8})})
	cfg := rfid.DefaultConfig(rfid.DefaultParams(), world)
	cfg.NumObjectParticles = 80
	cfg.NumReaderParticles = 20
	cfg.Seed = 11
	cfg.ReportPolicy = rfid.ReportEveryEpoch
	runner, err := rfid.NewRunner(cfg, rfid.RunnerConfig{Sharded: true, HistoryEpochs: 64})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	srv, err := serve.New(serve.Config{Runner: runner, IngestWait: 5 * time.Second})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return client.New(ts.URL)
}

// batch builds a tiny ingest batch for one epoch.
func batch(epoch int, tags ...string) api.IngestRequest {
	req := api.IngestRequest{
		Locations: []api.LocationReport{{Time: epoch, X: 1 + 0.1*float64(epoch), Y: 2, Z: 3}},
	}
	for _, tag := range tags {
		req.Readings = append(req.Readings, api.Reading{Time: epoch, Tag: tag})
	}
	return req
}

// TestSessionLifecycle drives the full resource surface through the SDK:
// create, list, get, ingest, flush, snapshot, query round-trip, delete.
func TestSessionLifecycle(t *testing.T) {
	c := newTestServer(t)
	ctx := context.Background()

	created, err := c.CreateSession(ctx, api.CreateSessionRequest{
		Source: api.SourceSynthetic,
		Engine: &api.EngineConfig{ObjectParticles: 60, ReaderParticles: 20, Seed: 3},
	})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if created.ID == "" || created.Default {
		t.Fatalf("created session %+v, want non-default with assigned id", created)
	}
	if created.Source != api.SourceSynthetic {
		t.Fatalf("created session source %q, want %q", created.Source, api.SourceSynthetic)
	}

	sessions, err := c.Sessions(ctx)
	if err != nil {
		t.Fatalf("Sessions: %v", err)
	}
	if len(sessions) != 2 || !sessions[0].Default || sessions[1].ID != created.ID {
		t.Fatalf("Sessions = %+v, want [default, %s]", sessions, created.ID)
	}

	sess := c.Session(created.ID)
	for ep := 0; ep < 5; ep++ {
		ack, err := sess.Ingest(ctx, batch(ep, "obj-A", "obj-B"))
		if err != nil {
			t.Fatalf("Ingest epoch %d: %v", ep, err)
		}
		if !ack.Queued || ack.Readings != 2 {
			t.Fatalf("ack %+v", ack)
		}
	}
	if _, err := sess.Flush(ctx, false); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	over, err := sess.Snapshot(ctx)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if over.Epochs == 0 || len(over.Tracked) != 2 {
		t.Fatalf("overview %+v, want 2 tracked tags", over)
	}
	tag, err := sess.SnapshotTag(ctx, "obj-A")
	if err != nil || !tag.Found {
		t.Fatalf("SnapshotTag: %v (found=%v)", err, tag.Found)
	}
	if tag.X == 0 && tag.Y == 0 && tag.Z == 0 {
		t.Fatalf("snapshot at origin: %+v", tag)
	}

	// The default session is isolated from the created one.
	defOver, err := c.Default().Snapshot(ctx)
	if err != nil {
		t.Fatalf("default Snapshot: %v", err)
	}
	if len(defOver.Tracked) != 0 || defOver.Epochs != 0 {
		t.Fatalf("default session saw the other session's data: %+v", defOver)
	}

	// Time travel: the session was created without history.
	if _, err := sess.SnapshotAt(ctx, 1); err == nil {
		t.Fatal("SnapshotAt succeeded without history retention")
	}

	// Query round-trip.
	info, err := sess.RegisterQuery(ctx, api.QuerySpec{Kind: api.QueryLocationUpdates, MinChange: 0.0})
	if err != nil {
		t.Fatalf("RegisterQuery: %v", err)
	}
	if _, err := sess.Ingest(ctx, batch(5, "obj-A")); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Flush(ctx, false); err != nil {
		t.Fatal(err)
	}
	page, err := sess.PollResults(ctx, info.ID, client.PollOptions{After: -1})
	if err != nil {
		t.Fatalf("PollResults: %v", err)
	}
	if len(page.Results) == 0 {
		t.Fatal("no results after flush")
	}
	queries, err := sess.Queries(ctx)
	if err != nil || len(queries) != 1 {
		t.Fatalf("Queries = %v (err %v), want 1", queries, err)
	}
	if err := sess.DeleteQuery(ctx, info.ID); err != nil {
		t.Fatalf("DeleteQuery: %v", err)
	}

	// Delete the session; it disappears from the list and addressing it 404s.
	if err := sess.Delete(ctx); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := sess.Snapshot(ctx); err == nil {
		t.Fatal("snapshot of deleted session succeeded")
	}
	sessions, _ = c.Sessions(ctx)
	if len(sessions) != 1 {
		t.Fatalf("%d sessions after delete, want 1", len(sessions))
	}
}

// TestStructuredErrors pins the SDK's error contract: every failure surfaces
// as *api.Error with a stable code and the HTTP status filled in.
func TestStructuredErrors(t *testing.T) {
	c := newTestServer(t)
	ctx := context.Background()

	// Unknown session: not_found.
	_, err := c.GetSession(ctx, "nope")
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.ErrNotFound || apiErr.HTTPStatus != 404 {
		t.Fatalf("GetSession(nope) = %v, want *api.Error{not_found, 404}", err)
	}

	// Reserved id: conflict.
	_, err = c.CreateSession(ctx, api.CreateSessionRequest{ID: "default"})
	if !errors.As(err, &apiErr) || apiErr.Code != api.ErrConflict || apiErr.HTTPStatus != 409 {
		t.Fatalf("CreateSession(default) = %v, want conflict 409", err)
	}

	// Duplicate id: conflict.
	if _, err := c.CreateSession(ctx, api.CreateSessionRequest{ID: "dup"}); err != nil {
		t.Fatal(err)
	}
	_, err = c.CreateSession(ctx, api.CreateSessionRequest{ID: "dup"})
	if !errors.As(err, &apiErr) || apiErr.Code != api.ErrConflict {
		t.Fatalf("duplicate CreateSession = %v, want conflict", err)
	}

	// Invalid engine knobs: bad_request.
	_, err = c.CreateSession(ctx, api.CreateSessionRequest{Engine: &api.EngineConfig{ObjectParticles: -1}})
	if !errors.As(err, &apiErr) || apiErr.Code != api.ErrBadRequest || apiErr.HTTPStatus != 400 {
		t.Fatalf("bad engine = %v, want bad_request 400", err)
	}

	// Invalid world: bad_request.
	_, err = c.CreateSession(ctx, api.CreateSessionRequest{Source: api.SourceWorld})
	if !errors.As(err, &apiErr) || apiErr.Code != api.ErrBadRequest {
		t.Fatalf("missing world = %v, want bad_request", err)
	}

	// Deleting the default session: conflict.
	err = c.DeleteSession(ctx, "default")
	if !errors.As(err, &apiErr) || apiErr.Code != api.ErrConflict {
		t.Fatalf("DeleteSession(default) = %v, want conflict", err)
	}

	// Unknown query on a live session: not_found.
	_, err = c.Default().PollResults(ctx, "q999", client.PollOptions{After: -1})
	if !errors.As(err, &apiErr) || apiErr.Code != api.ErrNotFound {
		t.Fatalf("PollResults(q999) = %v, want not_found", err)
	}

	// Untracked tag: not_found through the envelope, like any other missing
	// resource.
	_, err = c.Default().SnapshotTag(ctx, "never-seen")
	if !errors.As(err, &apiErr) || apiErr.Code != api.ErrNotFound || apiErr.HTTPStatus != 404 {
		t.Fatalf("SnapshotTag(never-seen) = %v, want not_found 404", err)
	}

	// Health decodes on any status and reports server state by field.
	hz, err := c.Health(ctx)
	if err != nil || !hz.OK || hz.State != "serving" {
		t.Fatalf("Health = %+v (err %v), want ok/serving", hz, err)
	}

	// A non-Health body (wrong server entirely) degrades to a typed error.
	bogus := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "teapot", http.StatusTeapot)
	}))
	defer bogus.Close()
	_, err = client.New(bogus.URL, client.WithHTTPClient(bogus.Client())).Health(ctx)
	if !errors.As(err, &apiErr) || apiErr.HTTPStatus != http.StatusTeapot {
		t.Fatalf("Health against non-rfidserve = %v, want http_418 api error", err)
	}

	// A path the mux itself rejects still yields the structured envelope.
	_, err = c.Session("x/../y").Get(ctx)
	if !errors.As(err, &apiErr) {
		t.Fatalf("mux-level error = %v, want *api.Error", err)
	}
}

// TestLongPollDelivery pins the long-poll contract from the client's side:
// a poller blocked in ?wait= is woken by a result produced AFTER the poll
// started, and a quiet query returns an empty page only once the wait
// elapses.
func TestLongPollDelivery(t *testing.T) {
	c := newTestServer(t)
	ctx := context.Background()
	sess := c.Default()

	info, err := sess.RegisterQuery(ctx, api.QuerySpec{Kind: api.QueryLocationUpdates})
	if err != nil {
		t.Fatalf("RegisterQuery: %v", err)
	}

	// Quiet query + short wait: empty page, after roughly the wait.
	start := time.Now()
	page, err := sess.PollResults(ctx, info.ID, client.PollOptions{After: -1, Wait: 300 * time.Millisecond})
	if err != nil {
		t.Fatalf("PollResults: %v", err)
	}
	if len(page.Results) != 0 {
		t.Fatalf("quiet poll returned %d rows", len(page.Results))
	}
	if el := time.Since(start); el < 250*time.Millisecond {
		t.Fatalf("quiet poll returned after %v, want >= 250ms (did not long-poll)", el)
	}

	// Delivery: ingest on a side goroutine after the poll is already waiting.
	errs := make(chan error, 1)
	go func() {
		time.Sleep(250 * time.Millisecond)
		if _, err := sess.Ingest(context.Background(), batch(0, "obj-A")); err != nil {
			errs <- err
			return
		}
		_, err := sess.Flush(context.Background(), false)
		errs <- err
	}()
	start = time.Now()
	page, err = sess.PollResults(ctx, info.ID, client.PollOptions{After: -1, Wait: 30 * time.Second})
	if err != nil {
		t.Fatalf("PollResults: %v", err)
	}
	if err := <-errs; err != nil {
		t.Fatalf("background ingest: %v", err)
	}
	el := time.Since(start)
	if len(page.Results) == 0 {
		t.Fatal("long poll returned no rows after delivery")
	}
	if el < 200*time.Millisecond {
		t.Fatalf("poll returned in %v — results existed before the poll started?", el)
	}
	if el > 10*time.Second {
		t.Fatalf("poll took %v — delivery did not wake the long-poller", el)
	}
}

// TestResultIterator pins the cursor semantics: every row exactly once, and
// a finished history query ends the stream.
func TestResultIterator(t *testing.T) {
	c := newTestServer(t)
	ctx := context.Background()
	sess := c.Default()

	for ep := 0; ep < 8; ep++ {
		if _, err := sess.Ingest(ctx, batch(ep, "obj-A", "obj-B")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sess.Flush(ctx, false); err != nil {
		t.Fatal(err)
	}

	// History query: finished at registration, drained by the iterator.
	info, err := sess.RegisterQuery(ctx, api.QuerySpec{
		Kind: api.QueryWindowedAggregate, Mode: api.ModeHistory,
		FromEpoch: 1, ToEpoch: 5, WindowEpochs: 1,
	})
	if err != nil {
		t.Fatalf("RegisterQuery(history): %v", err)
	}
	if !info.Finished {
		t.Fatalf("history query not finished at registration: %+v", info)
	}
	it := sess.Results(info.ID, client.PollOptions{After: client.FromStart, Limit: 2})
	var seqs []int
	for {
		rows, more, err := it.Next(ctx)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		for _, row := range rows {
			seqs = append(seqs, row.Seq)
		}
		if !more {
			break
		}
	}
	if len(seqs) != 5 { // one aggregate row per epoch 1..5
		t.Fatalf("iterator yielded %d rows, want 5 (%v)", len(seqs), seqs)
	}
	for i, seq := range seqs {
		if seq != i {
			t.Fatalf("seqs %v not the exactly-once 0..n sequence", seqs)
		}
	}
	// Drained iterators stay done.
	if rows, more, _ := it.Next(ctx); more || len(rows) != 0 {
		t.Fatalf("drained iterator returned rows=%d more=%v", len(rows), more)
	}
}
