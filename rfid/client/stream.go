package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/rfid/api"
	"repro/rfid/wire"
)

// StreamOptions tunes a StreamIngester. The zero value is usable.
type StreamOptions struct {
	// BatchSize is how many records (readings + location reports) accumulate
	// before the current batch is sealed and sent (default 256).
	BatchSize int
	// FlushInterval bounds how long a record may sit in the current batch
	// before it is sealed even if BatchSize was not reached (default 50ms).
	FlushInterval time.Duration
	// Window caps the batches in flight (sent but unacknowledged). Zero means
	// the server's advertised window; a non-zero value below it shrinks the
	// window further (it can never grow past the server's).
	Window int
	// OnAck, when set, observes every acknowledgement (called from the
	// ingester's reader goroutine; keep it quick).
	OnAck func(api.StreamAck)
	// ReconnectWait is the initial reconnect backoff (default 100ms, doubling
	// up to 5s). A server-provided retry_after_ms hint overrides it.
	ReconnectWait time.Duration
	// MaxAttempts is how many consecutive failed connection attempts the
	// ingester tolerates before failing terminally (default 10).
	MaxAttempts int
}

func (o *StreamOptions) applyDefaults() {
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 50 * time.Millisecond
	}
	if o.ReconnectWait <= 0 {
		o.ReconnectWait = 100 * time.Millisecond
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 10
	}
}

// Stream opens the session's streaming ingest data plane and returns a
// StreamIngester: records added with AddReading/AddLocation are batched
// client-side, sent as binary frames over one persistent connection, and
// acknowledged cumulatively by the server (on a durable session every ack is a
// durability receipt). The ingester reconnects on connection loss and resumes
// from the server's last acknowledged sequence number, so every record is
// applied exactly once even across reconnects and server restarts.
//
// The connection is established asynchronously; the first error surfaces from
// Flush, Close or Err.
func (s *Session) Stream(opts StreamOptions) *StreamIngester {
	opts.applyDefaults()
	st := &StreamIngester{s: s, opts: opts, done: make(chan struct{})}
	st.cond = sync.NewCond(&st.mu)
	go st.run()
	return st
}

// streamOutBatch is one sealed batch awaiting send or acknowledgement. The
// sequence number is assigned at first send (once the resume base is known
// from the server's hello) and then pinned, so a resend after a reconnect
// reuses it and the server can deduplicate.
type streamOutBatch struct {
	seq   uint64
	batch wire.APIBatch
}

// StreamIngester is the client side of the streaming ingest protocol. Add and
// Flush/Close may be called from one goroutine ("the producer"); the ingester
// runs its own connection-management goroutines underneath. A terminal error
// (protocol violation, exhausted reconnect attempts, durability regression on
// resume) is sticky and surfaces from every subsequent call.
type StreamIngester struct {
	s    *Session
	opts StreamOptions

	mu   sync.Mutex
	cond *sync.Cond
	// cur is the batch being built by Add*.
	cur      wire.APIBatch
	lastAdd  time.Time
	pending  []*streamOutBatch // sealed, not yet sent (or requeued for resend)
	unacked  []*streamOutBatch // sent, awaiting cumulative ack; ordered by seq
	seqBase  uint64            // server's resume point at first connect
	seqNext  uint64            // next sequence number to assign (0 = base unknown)
	acked    uint64            // highest cumulatively acknowledged seq
	lastAck  api.StreamAck     // most recent ack (watermark, durable flag)
	closing  bool              // Close called: drain, then send the close frame
	finished bool              // graceful close completed
	err      error             // terminal, sticky

	done chan struct{} // run loop exited (terminally or gracefully)
}

// AddReading appends one raw RFID reading to the current batch, sealing and
// sending it when BatchSize is reached. It never blocks on the network; flow
// control happens at send time.
func (st *StreamIngester) AddReading(time int, tag string) error {
	return st.add(api.Reading{Time: time, Tag: tag}, nil)
}

// AddLocation appends one reader-location report to the current batch.
func (st *StreamIngester) AddLocation(rep api.LocationReport) error {
	return st.add(api.Reading{}, &rep)
}

func (st *StreamIngester) add(r api.Reading, l *api.LocationReport) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.err != nil {
		return st.err
	}
	if st.closing {
		return errors.New("client: stream: ingester is closed")
	}
	if l != nil {
		st.cur.Locations = append(st.cur.Locations, *l)
	} else {
		st.cur.Readings = append(st.cur.Readings, r)
	}
	st.lastAdd = time.Now()
	if len(st.cur.Readings)+len(st.cur.Locations) >= st.opts.BatchSize {
		st.sealLocked()
	}
	return nil
}

// sealLocked moves the current batch onto the send queue. Caller holds st.mu.
func (st *StreamIngester) sealLocked() {
	if len(st.cur.Readings) == 0 && len(st.cur.Locations) == 0 {
		return
	}
	st.pending = append(st.pending, &streamOutBatch{batch: st.cur})
	st.cur = wire.APIBatch{}
	st.cond.Broadcast()
}

// Flush seals the current batch and blocks until everything added so far has
// been acknowledged by the server (on a durable session: durably applied).
func (st *StreamIngester) Flush(ctx context.Context) error {
	st.mu.Lock()
	st.sealLocked()
	st.mu.Unlock()
	return st.wait(ctx, func() bool {
		return len(st.pending) == 0 && len(st.unacked) == 0 &&
			len(st.cur.Readings) == 0 && len(st.cur.Locations) == 0
	})
}

// Close flushes, waits for every batch to be acknowledged, sends the graceful
// end-of-stream frame and tears the connection down. The ingester is unusable
// afterwards. Close reports the terminal error, if any; cancelling ctx
// abandons the drain and force-closes.
func (st *StreamIngester) Close(ctx context.Context) error {
	st.mu.Lock()
	st.closing = true
	st.sealLocked()
	st.cond.Broadcast()
	st.mu.Unlock()
	select {
	case <-st.done:
	case <-ctx.Done():
		st.fail(fmt.Errorf("client: stream: close abandoned: %w", ctx.Err()))
		<-st.done
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// Err returns the ingester's sticky terminal error, if any.
func (st *StreamIngester) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// Acked returns the most recent acknowledgement (zero value before the first
// ack arrives).
func (st *StreamIngester) Acked() api.StreamAck {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lastAck
}

// wait blocks on the ingester's condition until cond holds, a terminal error
// is set, or ctx is cancelled. Cancellation is detected via a watcher
// goroutine because sync.Cond cannot select on a channel.
func (st *StreamIngester) wait(ctx context.Context, cond func() bool) error {
	stopWatch := context.AfterFunc(ctx, func() {
		st.mu.Lock()
		st.cond.Broadcast()
		st.mu.Unlock()
	})
	defer stopWatch()
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if st.err != nil {
			return st.err
		}
		if cond() {
			return nil
		}
		if ctx.Err() != nil {
			return fmt.Errorf("client: stream: %w", ctx.Err())
		}
		st.cond.Wait()
	}
}

// fail records the terminal error (first one wins) and wakes every waiter.
func (st *StreamIngester) fail(err error) {
	st.mu.Lock()
	if st.err == nil && !st.finished {
		st.err = err
	}
	st.cond.Broadcast()
	st.mu.Unlock()
}

// --- connection management ---

// run owns the connection lifecycle: dial, handshake, resync, pump, reconnect
// with backoff. It exits on graceful close or terminal error.
func (st *StreamIngester) run() {
	defer close(st.done)
	backoff := st.opts.ReconnectWait
	attempts := 0
	for {
		if st.Err() != nil {
			return
		}
		conn, br, hello, err := st.dial()
		if err != nil {
			var terminal *terminalDialError
			if errors.As(err, &terminal) {
				st.fail(terminal.err)
				return
			}
			attempts++
			if attempts >= st.opts.MaxAttempts {
				st.fail(fmt.Errorf("client: stream: giving up after %d connection attempts: %w", attempts, err))
				return
			}
			wait := backoff
			var apiErr *api.Error
			if errors.As(err, &apiErr) && apiErr.RetryAfterMS > 0 {
				wait = time.Duration(apiErr.RetryAfterMS) * time.Millisecond
			}
			time.Sleep(wait)
			if backoff *= 2; backoff > 5*time.Second {
				backoff = 5 * time.Second
			}
			continue
		}
		attempts, backoff = 0, st.opts.ReconnectWait
		if !st.resync(hello) {
			conn.Close()
			return
		}
		connDead := make(chan struct{})
		var readerWG sync.WaitGroup
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			st.readAcks(br, hello, connDead)
			conn.Close() // unblock a writer stuck in Write
			st.cond.Broadcast()
		}()
		graceful := st.writeLoop(conn, hello, connDead)
		conn.Close()
		readerWG.Wait()
		if graceful {
			st.mu.Lock()
			st.finished = true
			st.cond.Broadcast()
			st.mu.Unlock()
			return
		}
	}
}

// resync reconciles local state with the server's hello after (re)connecting.
// It returns false on a terminal inconsistency.
func (st *StreamIngester) resync(hello api.StreamHello) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.seqNext == 0 {
		// First successful handshake: adopt the server's resume point as the
		// sequence base (a fresh session reports 0).
		st.seqBase = hello.ResumeAfter
		st.seqNext = hello.ResumeAfter + 1
		st.acked = hello.ResumeAfter
		return true
	}
	if hello.ResumeAfter < st.acked {
		st.err = fmt.Errorf("client: stream: server resumed at seq %d below acknowledged seq %d: durability contract broken", hello.ResumeAfter, st.acked)
		st.cond.Broadcast()
		return false
	}
	if hello.ResumeAfter >= st.seqNext {
		st.err = fmt.Errorf("client: stream: server resumed at seq %d, beyond anything this ingester sent (next %d): another stream wrote to the session", hello.ResumeAfter, st.seqNext)
		st.cond.Broadcast()
		return false
	}
	// Batches at or below the resume point are durable server-side even if
	// their acks were lost with the old connection; everything above it is
	// requeued for resend with its pinned sequence number.
	st.acked = hello.ResumeAfter
	resend := st.unacked[:0]
	for _, b := range st.unacked {
		if b.seq > hello.ResumeAfter {
			resend = append(resend, b)
		}
	}
	st.pending = append(append([]*streamOutBatch{}, resend...), st.pending...)
	st.unacked = st.unacked[:0]
	st.cond.Broadcast()
	return true
}

// writeLoop sends sealed batches subject to the flow-control window, the
// periodic flush timer and the graceful close handshake. It returns true when
// the stream ended gracefully (close frame sent after a full drain) and false
// when the connection died and a reconnect should follow.
func (st *StreamIngester) writeLoop(conn net.Conn, hello api.StreamHello, connDead chan struct{}) bool {
	window := hello.Window
	if st.opts.Window > 0 && st.opts.Window < window {
		window = st.opts.Window
	}
	if window < 1 {
		window = 1
	}
	flush := time.NewTicker(st.opts.FlushInterval)
	defer flush.Stop()
	go func() {
		for {
			select {
			case <-flush.C:
				st.mu.Lock()
				if time.Since(st.lastAdd) >= st.opts.FlushInterval {
					st.sealLocked()
				}
				st.mu.Unlock()
			case <-connDead:
				return
			case <-st.done:
				return
			}
		}
	}()

	var enc wire.Encoder
	var frame []byte
	for {
		st.mu.Lock()
		var out *streamOutBatch
		sendClose := false
		for {
			if st.err != nil {
				st.mu.Unlock()
				return false
			}
			select {
			case <-connDead:
				st.mu.Unlock()
				return false
			default:
			}
			if len(st.pending) > 0 && len(st.unacked) < window {
				out = st.pending[0]
				st.pending = st.pending[1:]
				if out.seq == 0 {
					out.seq = st.seqNext
					st.seqNext++
				}
				st.unacked = append(st.unacked, out)
				break
			}
			if st.closing && len(st.pending) == 0 && len(st.unacked) == 0 &&
				len(st.cur.Readings) == 0 && len(st.cur.Locations) == 0 {
				sendClose = true
				break
			}
			st.cond.Wait()
		}
		st.mu.Unlock()

		enc.Reset()
		if sendClose {
			wire.AppendClose(&enc)
		} else {
			wire.AppendBatchFrame(&enc, out.seq, out.batch)
		}
		frame = wire.AppendFrame(frame[:0], enc.Bytes())
		_ = conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
		if _, err := conn.Write(frame); err != nil {
			return false
		}
		if sendClose {
			return true
		}
	}
}

// readAcks consumes server frames (acks and the terminal error frame) until
// the connection dies; it closes connDead on exit.
func (st *StreamIngester) readAcks(br *bufio.Reader, hello api.StreamHello, connDead chan struct{}) {
	defer close(connDead)
	maxFrame := hello.MaxFrameBytes
	fr := wire.NewFrameReader(br, maxFrame)
	var dec wire.Decoder
	for {
		payload, err := fr.Next()
		if err != nil {
			return
		}
		dec.Reset(payload)
		switch kind := dec.Uvarint(); kind {
		case wire.KindAck:
			ack, err := wire.DecodeAck(&dec)
			if err != nil {
				return
			}
			st.mu.Lock()
			if ack.UpTo > st.acked {
				st.acked = ack.UpTo
			}
			st.lastAck = ack
			keep := st.unacked[:0]
			for _, b := range st.unacked {
				if b.seq > ack.UpTo {
					keep = append(keep, b)
				}
			}
			st.unacked = keep
			st.cond.Broadcast()
			st.mu.Unlock()
			if st.opts.OnAck != nil {
				st.opts.OnAck(ack)
			}
		case wire.KindError:
			se, derr := wire.DecodeError(&dec)
			if derr != nil {
				return
			}
			if se.Code == api.ErrUnavailable {
				// Transient refusal (shutdown, backpressure): let the
				// reconnect loop retry after the server's hint.
				if se.RetryAfterMS > 0 {
					time.Sleep(time.Duration(se.RetryAfterMS) * time.Millisecond)
				}
				return
			}
			st.fail(&api.Error{Code: se.Code, Message: "stream: " + se.Message, RetryAfterMS: se.RetryAfterMS})
			return
		default:
			st.fail(fmt.Errorf("client: stream: unexpected frame kind %d from server", kind))
			return
		}
	}
}

// terminalDialError marks a dial failure no retry can fix.
type terminalDialError struct{ err error }

func (e *terminalDialError) Error() string { return e.err.Error() }

// dial connects, performs the HTTP upgrade handshake and reads the hello
// frame. The returned bufio.Reader may already hold post-handshake bytes and
// must be used for all subsequent reads.
func (st *StreamIngester) dial() (net.Conn, *bufio.Reader, api.StreamHello, error) {
	var zero api.StreamHello
	u, err := url.Parse(st.s.c.base)
	if err != nil {
		return nil, nil, zero, &terminalDialError{fmt.Errorf("client: stream: bad base URL: %w", err)}
	}
	if u.Scheme != "http" {
		return nil, nil, zero, &terminalDialError{fmt.Errorf("client: stream: unsupported scheme %q (the streaming protocol needs a plain TCP connection)", u.Scheme)}
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	conn, err := net.DialTimeout("tcp", host, 10*time.Second)
	if err != nil {
		return nil, nil, zero, fmt.Errorf("client: stream: dial: %w", err)
	}
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	fail := func(err error) (net.Conn, *bufio.Reader, api.StreamHello, error) {
		conn.Close()
		return nil, nil, zero, err
	}
	req := fmt.Sprintf("POST %s/stream HTTP/1.1\r\nHost: %s\r\nConnection: Upgrade\r\nUpgrade: rfid-stream/1\r\nContent-Length: 0\r\n\r\n", st.s.prefix, u.Host)
	if _, err := io.WriteString(conn, req); err != nil {
		return fail(fmt.Errorf("client: stream: handshake write: %w", err))
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		return fail(fmt.Errorf("client: stream: handshake read: %w", err))
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		return fail(decodeErrorBytes(resp.StatusCode, data))
	}
	payload, err := wire.NewFrameReader(br, wire.DefaultMaxFramePayload).Next()
	if err != nil {
		return fail(fmt.Errorf("client: stream: read hello: %w", err))
	}
	var dec wire.Decoder
	dec.Reset(payload)
	if kind := dec.Uvarint(); kind != wire.KindHello {
		return fail(&terminalDialError{fmt.Errorf("client: stream: expected hello frame, got kind %d", kind)})
	}
	hello, err := wire.DecodeHello(&dec)
	if err != nil {
		return fail(&terminalDialError{fmt.Errorf("client: stream: %w", err)})
	}
	_ = conn.SetDeadline(time.Time{})
	return conn, br, hello, nil
}
