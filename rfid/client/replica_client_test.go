package client_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/rfid/api"
	"repro/rfid/client"
)

// TestWithReadReplicaRouting pins the split-brain-free routing rule: GETs go
// to the replica, everything else (and Promote) to the node it addresses.
func TestWithReadReplicaRouting(t *testing.T) {
	record := func(hits *[]string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			*hits = append(*hits, r.Method+" "+r.URL.Path)
			switch {
			case r.URL.Path == "/v1/promote":
				json.NewEncoder(w).Encode(api.PromoteResponse{Role: api.RolePrimary, Sessions: 1})
			case r.Method == http.MethodGet:
				w.Write([]byte(`{"sessions":[]}`))
			default:
				w.WriteHeader(http.StatusAccepted)
				w.Write([]byte(`{}`))
			}
		}
	}
	var primaryHits, replicaHits []string
	primary := httptest.NewServer(record(&primaryHits))
	defer primary.Close()
	replica := httptest.NewServer(record(&replicaHits))
	defer replica.Close()

	c := client.New(primary.URL, client.WithReadReplica(replica.URL))
	ctx := context.Background()
	if _, err := c.Sessions(ctx); err != nil {
		t.Fatalf("Sessions: %v", err)
	}
	if _, err := c.Default().Ingest(ctx, api.IngestRequest{}); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	pr, err := c.Promote(ctx)
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if pr.Role != api.RolePrimary {
		t.Fatalf("Promote role = %q", pr.Role)
	}

	wantPrimary := []string{"POST /v1/sessions/default/ingest"}
	wantReplica := []string{"GET /v1/sessions", "POST /v1/promote"}
	if len(primaryHits) != len(wantPrimary) || primaryHits[0] != wantPrimary[0] {
		t.Fatalf("primary saw %v, want %v", primaryHits, wantPrimary)
	}
	if len(replicaHits) != len(wantReplica) || replicaHits[0] != wantReplica[0] || replicaHits[1] != wantReplica[1] {
		t.Fatalf("replica saw %v, want %v", replicaHits, wantReplica)
	}
}

// TestPromoteIdempotentOnPrimary exercises Promote against a real server that
// is already primary: 200, role "primary", no error.
func TestPromoteIdempotentOnPrimary(t *testing.T) {
	c := newTestServer(t)
	pr, err := c.Promote(context.Background())
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if pr.Role != api.RolePrimary {
		t.Fatalf("Promote role = %q, want %q", pr.Role, api.RolePrimary)
	}
}
