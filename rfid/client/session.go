package client

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/rfid/api"
)

// Session is a client handle scoped to one session resource. It is cheap and
// safe to share; every method issues its own request.
type Session struct {
	c      *Client
	id     string
	prefix string
}

// ID returns the session id the handle is scoped to.
func (s *Session) ID() string { return s.id }

// Get describes the session.
func (s *Session) Get(ctx context.Context) (api.Session, error) {
	return s.c.GetSession(ctx, s.id)
}

// Delete closes the session and deletes its durable state.
func (s *Session) Delete(ctx context.Context) error {
	return s.c.DeleteSession(ctx, s.id)
}

// Ingest enqueues one batch of raw records. On a durable session the returned
// acknowledgement is a durability receipt: the batch reached the write-ahead
// log before the call returned.
func (s *Session) Ingest(ctx context.Context, batch api.IngestRequest) (api.IngestResponse, error) {
	var out api.IngestResponse
	err := s.c.do(ctx, http.MethodPost, s.prefix+"/ingest", batch, &out)
	return out, err
}

// Flush synchronously processes every buffered epoch; when it returns,
// everything ingested before the call has been fully processed. With windows
// true the registered queries' held-back final window is flushed too.
func (s *Session) Flush(ctx context.Context, windows bool) (api.FlushResponse, error) {
	path := s.prefix + "/flush"
	if windows {
		path += "?windows=true"
	}
	var out api.FlushResponse
	err := s.c.do(ctx, http.MethodPost, path, struct{}{}, &out)
	return out, err
}

// Snapshot reads the session overview: reader pose estimate, progress
// counters and tracked tags.
func (s *Session) Snapshot(ctx context.Context) (api.SnapshotOverview, error) {
	var out api.SnapshotOverview
	err := s.c.do(ctx, http.MethodGet, s.prefix+"/snapshot", nil, &out)
	return out, err
}

// SnapshotTag reads the current belief about one tag.
func (s *Session) SnapshotTag(ctx context.Context, tag string) (api.TagSnapshot, error) {
	var out api.TagSnapshot
	err := s.c.do(ctx, http.MethodGet, s.prefix+"/snapshot/"+url.PathEscape(tag), nil, &out)
	return out, err
}

// SnapshotAt reads the time-travel view of one retained history epoch
// (requires the session's engine.history_epochs > 0).
func (s *Session) SnapshotAt(ctx context.Context, epoch int) (api.HistorySnapshot, error) {
	var out api.HistorySnapshot
	err := s.c.do(ctx, http.MethodGet, s.prefix+"/snapshot?epoch="+strconv.Itoa(epoch), nil, &out)
	return out, err
}

// Stats reads the session's live debug view: residency state, queue depth,
// stream window, checkpoint/WAL ages and (with tracing enabled) the
// cumulative per-stage time breakdown plus the most recent sealed epochs.
// Reading stats never hydrates an evicted session.
func (s *Session) Stats(ctx context.Context) (api.SessionDebugStats, error) {
	var out api.SessionDebugStats
	err := s.c.do(ctx, http.MethodGet, s.prefix+"/stats", nil, &out)
	return out, err
}

// Trace reads the per-stage timings of up to epochs of the most recently
// sealed epochs, oldest first (epochs <= 0 returns every retained epoch).
// Requires the server's -trace-epochs > 0; a disabled or evicted session
// answers with an empty trace.
func (s *Session) Trace(ctx context.Context, epochs int) (api.TraceResponse, error) {
	path := s.prefix + "/trace"
	if epochs > 0 {
		path += "?epochs=" + strconv.Itoa(epochs)
	}
	var out api.TraceResponse
	err := s.c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// RegisterQuery registers a continuous (or history-mode) query and returns
// its assigned id and state.
func (s *Session) RegisterQuery(ctx context.Context, spec api.QuerySpec) (api.QueryInfo, error) {
	var out api.QueryInfo
	err := s.c.do(ctx, http.MethodPost, s.prefix+"/queries", spec, &out)
	return out, err
}

// Queries lists the session's registered queries.
func (s *Session) Queries(ctx context.Context) ([]api.QueryInfo, error) {
	var out api.QueryList
	if err := s.c.do(ctx, http.MethodGet, s.prefix+"/queries", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// QueriesPage lists the session's queries one page at a time: pass limit
// (0 = server maximum) and the next_page_token of the previous page ("" for
// the first). An empty NextPageToken in the result means the listing is
// complete.
func (s *Session) QueriesPage(ctx context.Context, limit int, pageToken string) (api.QueryPage, error) {
	q := url.Values{}
	q.Set("page_token", pageToken)
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	var out api.QueryPage
	err := s.c.do(ctx, http.MethodGet, s.prefix+"/queries?"+q.Encode(), nil, &out)
	return out, err
}

// DeleteQuery unregisters a query.
func (s *Session) DeleteQuery(ctx context.Context, id string) error {
	return s.c.do(ctx, http.MethodDelete, s.prefix+"/queries/"+url.PathEscape(id), nil, nil)
}

// FromStart is the cursor value that reads a query's results from the very
// first row (sequence numbers start at 0, so the exclusive cursor must sit
// below them).
const FromStart = -1

// PollOptions tunes one results poll (and the Results iterator).
type PollOptions struct {
	// After is the exclusive resume cursor: only results with Seq > After are
	// returned. Pass FromStart (-1) to read from the beginning; the zero
	// value resumes after sequence 0, exactly like any other cursor value,
	// so a persisted cursor round-trips without special cases. The iterator
	// advances it automatically.
	After int
	// Limit caps the rows returned per poll (0 = server default, unlimited).
	Limit int
	// Wait long-polls: the server holds the request until a new result
	// arrives or the wait elapses (capped server-side, default cap 60s).
	// Zero returns immediately — plain polling.
	Wait time.Duration
}

// PollResults reads one page of results with Seq > opts.After. A 503 refusal
// carrying a retry_after_ms hint (transient backpressure) is retried in place
// after the hinted delay — twice at most, and never past ctx's deadline —
// before the error surfaces.
func (s *Session) PollResults(ctx context.Context, queryID string, opts PollOptions) (api.ResultsPage, error) {
	q := url.Values{}
	q.Set("after", strconv.Itoa(opts.After))
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	if opts.Wait > 0 {
		q.Set("wait", opts.Wait.String())
	}
	path := s.prefix + "/queries/" + url.PathEscape(queryID) + "/results?" + q.Encode()
	var out api.ResultsPage
	for attempt := 0; ; attempt++ {
		err := s.c.do(ctx, http.MethodGet, path, nil, &out)
		apiErr, ok := err.(*api.Error)
		if !ok || apiErr.Code != api.ErrUnavailable || apiErr.RetryAfterMS <= 0 || attempt >= 2 {
			return out, err
		}
		timer := time.NewTimer(time.Duration(apiErr.RetryAfterMS) * time.Millisecond)
		select {
		case <-ctx.Done():
			timer.Stop()
			return out, err
		case <-timer.C:
		}
	}
}

// Results returns an iterator over a query's result stream, starting after
// opts.After. Pass After: FromStart to read from the first row (an explicit
// cursor resumes exactly there — including After: 0, which resumes after
// sequence 0); set Wait to long-poll.
func (s *Session) Results(queryID string, opts PollOptions) *ResultIterator {
	return &ResultIterator{s: s, queryID: queryID, after: opts.After, limit: opts.Limit, wait: opts.Wait}
}

// ResultIterator streams a query's results, tracking the sequence cursor so
// every row is observed exactly once. It is not safe for concurrent use.
type ResultIterator struct {
	s       *Session
	queryID string
	after   int
	limit   int
	wait    time.Duration
	done    bool
}

// Next fetches the next batch of rows. With a Wait configured, the underlying
// request long-polls: an empty non-final batch means the wait elapsed with no
// new rows (keep calling; cancel via ctx to stop). Once the query is finished
// and drained, Next returns (nil, false, nil) forever.
func (it *ResultIterator) Next(ctx context.Context) (rows []api.QueryResult, more bool, err error) {
	if it.done {
		return nil, false, nil
	}
	page, err := it.s.PollResults(ctx, it.queryID, PollOptions{After: it.after, Limit: it.limit, Wait: it.wait})
	if err != nil {
		return nil, true, err
	}
	if n := len(page.Results); n > 0 {
		it.after = page.Results[n-1].Seq
	}
	// A finished query never produces new rows, so an empty page past the
	// cursor means the stream has ended — either the buffer was drained, or
	// the remaining rows were already evicted by the server's cap (the
	// cursor can then never reach NextSeq-1, which is why the drained check
	// alone would loop forever).
	if page.Query.Finished && (len(page.Results) == 0 || it.after >= page.Query.NextSeq-1) {
		it.done = true
		return page.Results, len(page.Results) > 0, nil
	}
	return page.Results, true, nil
}

// Err never blocks: it validates that the iterator's query still exists.
func (it *ResultIterator) Err(ctx context.Context) error {
	_, err := it.s.PollResults(ctx, it.queryID, PollOptions{After: it.after})
	return err
}

// String implements fmt.Stringer for debugging.
func (it *ResultIterator) String() string {
	return fmt.Sprintf("results(%s/%s after=%d)", it.s.id, it.queryID, it.after)
}
