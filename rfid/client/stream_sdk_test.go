package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/rfid"
	"repro/rfid/api"
	"repro/rfid/client"
)

// newStreamTestServer is newTestServer plus the base URL, which the raw
// OpenSession/Stream paths need.
func newStreamTestServer(t *testing.T) (*client.Client, string) {
	t.Helper()
	world := rfid.NewWorld()
	world.AddShelf(rfid.Shelf{ID: "floor", Region: rfid.NewBBox(rfid.Vec3{}, rfid.Vec3{X: 40, Y: 40, Z: 8})})
	cfg := rfid.DefaultConfig(rfid.DefaultParams(), world)
	cfg.NumObjectParticles = 60
	cfg.NumReaderParticles = 20
	cfg.Seed = 13
	runner, err := rfid.NewRunner(cfg, rfid.RunnerConfig{Sharded: true})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	srv, err := serve.New(serve.Config{Runner: runner, IngestWait: 5 * time.Second})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return client.New(ts.URL), ts.URL
}

// TestStreamIngester drives the full happy path through the SDK alone:
// OpenSession (Location-following), streaming with both size- and
// interval-triggered seals, Flush, cumulative acks and a graceful Close.
func TestStreamIngester(t *testing.T) {
	ctx := context.Background()
	c, _ := newStreamTestServer(t)
	sess, created, err := c.OpenSession(ctx, api.CreateSessionRequest{
		Source: api.SourceSynthetic,
		Engine: &api.EngineConfig{ObjectParticles: 40, Seed: 2},
	})
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	if created.ID == "" || sess.ID() != created.ID {
		t.Fatalf("OpenSession handle id %q vs created %q", sess.ID(), created.ID)
	}

	var ackCount atomic.Int64
	ing := sess.Stream(client.StreamOptions{
		BatchSize:     8,
		FlushInterval: 5 * time.Millisecond,
		OnAck:         func(api.StreamAck) { ackCount.Add(1) },
	})
	// Size-triggered seals: three full batches.
	for ep := 0; ep < 3; ep++ {
		if err := ing.AddLocation(api.LocationReport{Time: ep, X: 1, Y: 2, Z: 3}); err != nil {
			t.Fatalf("AddLocation: %v", err)
		}
		for i := 0; i < 7; i++ {
			if err := ing.AddReading(ep, "tag-"+string(rune('a'+i))); err != nil {
				t.Fatalf("AddReading: %v", err)
			}
		}
	}
	// Interval-triggered seal: a partial batch that only the flush ticker can
	// send.
	if err := ing.AddReading(3, "tag-a"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for ing.Acked().UpTo < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("ticker-sealed batch never acked (UpTo=%d)", ing.Acked().UpTo)
		}
		time.Sleep(time.Millisecond)
	}
	// Explicit Flush drains another partial batch.
	if err := ing.AddReading(4, "tag-b"); err != nil {
		t.Fatal(err)
	}
	if err := ing.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	ack := ing.Acked()
	if ack.UpTo != 5 {
		t.Fatalf("acked UpTo = %d, want 5", ack.UpTo)
	}
	if ack.Durable {
		t.Fatal("ack claims durability on a non-durable session")
	}
	if ackCount.Load() == 0 {
		t.Fatal("OnAck never fired")
	}
	if err := ing.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := ing.Err(); err != nil {
		t.Fatalf("Err after graceful close: %v", err)
	}
	// The streamed records actually reached the engine.
	if _, err := sess.Flush(ctx, false); err != nil {
		t.Fatal(err)
	}
	snap, err := sess.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epochs == 0 || len(snap.Tracked) == 0 {
		t.Fatalf("streamed state missing: %+v", snap)
	}
	// Adds after Close fail cleanly.
	if err := ing.AddReading(9, "late"); err == nil {
		t.Fatal("AddReading after Close succeeded")
	}
}

// TestStreamIngesterDialFailures pins the two dial failure modes: a terminal
// one (unsupported scheme — no retry can fix it) and an exhausted retry
// budget against a dead endpoint.
func TestStreamIngesterDialFailures(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	bad := client.New("ftp://example.invalid").Session("s")
	ing := bad.Stream(client.StreamOptions{})
	if err := ing.Close(ctx); err == nil || !strings.Contains(err.Error(), "scheme") {
		t.Fatalf("unsupported scheme: err = %v", err)
	}

	dead := client.New("http://127.0.0.1:1").Session("s")
	ing = dead.Stream(client.StreamOptions{ReconnectWait: time.Millisecond, MaxAttempts: 2})
	if err := ing.Close(ctx); err == nil || !strings.Contains(err.Error(), "connection attempts") {
		t.Fatalf("dead endpoint: err = %v", err)
	}
	if err := ing.AddReading(0, "x"); err == nil {
		t.Fatal("AddReading after terminal failure succeeded")
	}
}

// TestSessionsAndQueriesPages walks both paginated list surfaces through the
// SDK.
func TestSessionsAndQueriesPages(t *testing.T) {
	ctx := context.Background()
	c, _ := newStreamTestServer(t)
	for _, id := range []string{"pg-a", "pg-b", "pg-c"} {
		if _, err := c.CreateSession(ctx, api.CreateSessionRequest{ID: id, Source: api.SourceSynthetic}); err != nil {
			t.Fatalf("create %s: %v", id, err)
		}
	}
	var ids []string
	token := ""
	for {
		page, err := c.SessionsPage(ctx, 2, token)
		if err != nil {
			t.Fatalf("SessionsPage: %v", err)
		}
		for _, s := range page.Sessions {
			ids = append(ids, s.ID)
		}
		if page.NextPageToken == "" {
			break
		}
		token = page.NextPageToken
	}
	if len(ids) != 4 || ids[0] != "default" {
		t.Fatalf("paged sessions = %v, want default + pg-a..c", ids)
	}

	sess := c.Session("pg-a")
	for i := 0; i < 3; i++ {
		if _, err := sess.RegisterQuery(ctx, api.QuerySpec{Kind: api.QueryLocationUpdates}); err != nil {
			t.Fatalf("register: %v", err)
		}
	}
	var qids []string
	token = ""
	for {
		page, err := sess.QueriesPage(ctx, 2, token)
		if err != nil {
			t.Fatalf("QueriesPage: %v", err)
		}
		for _, q := range page.Queries {
			qids = append(qids, q.ID)
		}
		if page.NextPageToken == "" {
			break
		}
		token = page.NextPageToken
	}
	if len(qids) != 3 {
		t.Fatalf("paged queries = %v, want 3", qids)
	}
}

// TestPollResultsRetryAfter pins the SDK's retry-in-place on a 503 carrying
// retry_after_ms: two hinted refusals are absorbed, the third attempt's
// answer surfaces.
func TestPollResultsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(api.ErrorEnvelope{Error: &api.Error{
				Code: api.ErrUnavailable, Message: "backpressure", RetryAfterMS: 1,
			}})
			return
		}
		_ = json.NewEncoder(w).Encode(api.ResultsPage{Query: api.QueryInfo{ID: "q1"}})
	}))
	defer fake.Close()

	sess := client.New(fake.URL).Session("s")
	page, err := sess.PollResults(context.Background(), "q1", client.PollOptions{After: client.FromStart})
	if err != nil {
		t.Fatalf("PollResults: %v", err)
	}
	if page.Query.ID != "q1" || calls.Load() != 3 {
		t.Fatalf("page %+v after %d calls, want q1 after 3", page.Query, calls.Load())
	}

	// A hint-free 503 is not retried.
	calls.Store(10)
	fake2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(api.ErrorEnvelope{Error: &api.Error{Code: api.ErrUnavailable, Message: "nope"}})
	}))
	defer fake2.Close()
	calls.Store(0)
	_, err = client.New(fake2.URL).Session("s").PollResults(context.Background(), "q1", client.PollOptions{})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.ErrUnavailable {
		t.Fatalf("hint-free 503: err = %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("hint-free 503 retried: %d calls", calls.Load())
	}
}
