// Package client is the typed Go SDK for the serving layer's v1 API
// (rfidserve). It speaks only the stable public wire schema (rfid/api) —
// create sessions, ingest raw record batches, register continuous queries,
// iterate results with long-polling, and read snapshots — with structured
// errors surfaced as *api.Error values.
//
// The package deliberately has no dependency on the engine's internal
// packages, so it can be vendored into external services unchanged.
//
// Typical use:
//
//	c := client.New("http://localhost:8080")
//	sess, err := c.CreateSession(ctx, api.CreateSessionRequest{Source: api.SourceSynthetic})
//	s := c.Session(sess.ID)
//	_, err = s.Ingest(ctx, api.IngestRequest{Readings: ...})
//	info, err := s.RegisterQuery(ctx, api.QuerySpec{Kind: api.QueryLocationUpdates})
//	it := s.Results(info.ID, client.PollOptions{After: client.FromStart, Wait: 30 * time.Second})
//	for {
//		rows, err := it.Next(ctx) // long-polls; empty only on wait timeout
//		...
//	}
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/rfid/api"
)

// Client talks to one rfidserve process.
type Client struct {
	base    string
	replica string
	hc      *http.Client
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying *http.Client (timeouts, transport,
// instrumentation). The default client has no overall timeout, which is what
// long-polled result reads want; apply per-request deadlines via context.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithReadReplica routes GET requests (snapshots, time-travel reads, query
// results, listings) to a read replica at base while writes keep going to the
// primary. Replica-served responses carry the Rfid-Role, Rfid-Applied-Epoch
// and Rfid-Replication-Lag-Seconds staleness headers; replicated reads are
// eventually consistent with the primary's acknowledged writes. Promote is
// also sent to the replica, since promotion addresses the node being
// promoted.
func WithReadReplica(base string) Option {
	return func(c *Client) { c.replica = strings.TrimRight(base, "/") }
}

// New returns a client for the server at base (e.g. "http://localhost:8080").
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// CreateSession creates a new session resource and returns its description.
func (c *Client) CreateSession(ctx context.Context, req api.CreateSessionRequest) (api.Session, error) {
	var out api.Session
	err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &out)
	return out, err
}

// OpenSession creates a session and returns a ready-to-use handle for it.
// Unlike CreateSession, the handle is bound to the resource path the server
// returned in the 201 response's Location header rather than one the client
// constructed, so it tracks the canonical resource location.
func (c *Client) OpenSession(ctx context.Context, req api.CreateSessionRequest) (*Session, api.Session, error) {
	data, err := json.Marshal(req)
	if err != nil {
		return nil, api.Session{}, fmt.Errorf("client: encode session request: %w", err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/sessions", bytes.NewReader(data))
	if err != nil {
		return nil, api.Session{}, fmt.Errorf("client: create session: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		return nil, api.Session{}, fmt.Errorf("client: create session: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return nil, api.Session{}, decodeError(resp)
	}
	var out api.Session
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, api.Session{}, fmt.Errorf("client: decode session: %w", err)
	}
	prefix := "/v1/sessions/" + url.PathEscape(out.ID)
	if loc := resp.Header.Get("Location"); loc != "" {
		if u, perr := url.Parse(loc); perr == nil && u.Path != "" {
			prefix = u.Path
		}
	}
	return &Session{c: c, id: out.ID, prefix: prefix}, out, nil
}

// Sessions lists every live session.
func (c *Client) Sessions(ctx context.Context) ([]api.Session, error) {
	var out api.SessionList
	if err := c.do(ctx, http.MethodGet, "/v1/sessions", nil, &out); err != nil {
		return nil, err
	}
	return out.Sessions, nil
}

// SessionsPage lists sessions one page at a time: pass limit (0 = server
// maximum) and the next_page_token of the previous page ("" for the first).
// An empty NextPageToken in the result means the listing is complete.
func (c *Client) SessionsPage(ctx context.Context, limit int, pageToken string) (api.SessionList, error) {
	q := url.Values{}
	q.Set("page_token", pageToken)
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	var out api.SessionList
	err := c.do(ctx, http.MethodGet, "/v1/sessions?"+q.Encode(), nil, &out)
	return out, err
}

// GetSession describes one session.
func (c *Client) GetSession(ctx context.Context, id string) (api.Session, error) {
	var out api.Session
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id), nil, &out)
	return out, err
}

// DeleteSession closes a session and deletes its durable state.
func (c *Client) DeleteSession(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, nil)
}

// Health reads /v1/healthz. A failed (unrecovered) server answers 503 with a
// valid Health body; Health decodes that body too and returns it with a nil
// error, so callers distinguish server states by OK/State rather than by
// transport errors. The error is non-nil only when the request itself failed
// or the body was not a Health document.
func (c *Client) Health(ctx context.Context) (api.Health, error) {
	var out api.Health
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return out, fmt.Errorf("client: healthz: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return out, fmt.Errorf("client: healthz: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return out, fmt.Errorf("client: healthz: %w", err)
	}
	if jerr := json.Unmarshal(data, &out); jerr != nil || out.State == "" {
		return out, decodeErrorBytes(resp.StatusCode, data)
	}
	return out, nil
}

// Promote asks a replica to become the primary (POST /v1/promote): the
// replication link is torn down, mirrored logs are sealed and the node starts
// accepting writes where the old primary left off. The request goes to the
// read replica configured with WithReadReplica (promotion addresses the node
// being promoted), or to the client's base URL otherwise. Idempotent on a
// node that is already primary.
func (c *Client) Promote(ctx context.Context) (api.PromoteResponse, error) {
	base := c.base
	if c.replica != "" {
		base = c.replica
	}
	var out api.PromoteResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/promote", nil)
	if err != nil {
		return out, fmt.Errorf("client: promote: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return out, fmt.Errorf("client: promote: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, decodeError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("client: decode promote response: %w", err)
	}
	return out, nil
}

// Session returns a handle scoped to one session id. No network traffic
// happens until a method is called; the id need not exist yet.
func (c *Client) Session(id string) *Session {
	return &Session{c: c, id: id, prefix: "/v1/sessions/" + url.PathEscape(id)}
}

// Default returns the handle for the reserved "default" session the legacy
// unversioned routes alias onto.
func (c *Client) Default() *Session { return c.Session("default") }

// do performs one JSON round-trip. Non-2xx responses are decoded from the
// structured error envelope into *api.Error (with HTTPStatus filled in); a
// body that is not an envelope becomes an *api.Error with the raw text.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encode %s %s: %w", method, path, err)
		}
		body = bytes.NewReader(data)
	}
	base := c.base
	if c.replica != "" && method == http.MethodGet {
		base = c.replica
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, body)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return decodeError(resp)
	}
	if out == nil {
		// Drain so the connection is reusable.
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// decodeError turns a non-2xx response into an *api.Error.
func decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	return decodeErrorBytes(resp.StatusCode, data)
}

// decodeErrorBytes builds the *api.Error for an already-read body.
func decodeErrorBytes(status int, data []byte) error {
	var env api.ErrorEnvelope
	if err := json.Unmarshal(data, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		env.Error.HTTPStatus = status
		return env.Error
	}
	msg := strings.TrimSpace(string(data))
	if msg == "" {
		msg = http.StatusText(status)
	}
	return &api.Error{
		Code:       fmt.Sprintf("http_%d", status),
		Message:    msg,
		HTTPStatus: status,
	}
}
