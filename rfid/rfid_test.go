package rfid_test

import (
	"bytes"
	"testing"

	"repro/rfid"
)

// simulateSmall builds a small warehouse trace through the public API.
func simulateSmall(t *testing.T, objects int, seed int64) *rfid.Trace {
	t.Helper()
	cfg := rfid.DefaultWarehouseConfig()
	cfg.NumObjects = objects
	cfg.NumShelfTags = 4
	cfg.Seed = seed
	trace, err := rfid.SimulateWarehouse(cfg)
	if err != nil {
		t.Fatalf("SimulateWarehouse: %v", err)
	}
	return trace
}

func TestPublicPipelineEndToEnd(t *testing.T) {
	trace := simulateSmall(t, 10, 3)

	// Raw streams -> synchronized epochs -> pipeline -> events.
	readings, locations := rfid.RawStreams(trace)
	epochs := rfid.Synchronize(readings, locations)
	if len(epochs) != len(trace.Epochs) {
		t.Fatalf("synchronization changed the epoch count: %d vs %d", len(epochs), len(trace.Epochs))
	}

	cfg := rfid.DefaultConfig(rfid.DefaultParams(), trace.World)
	cfg.NumObjectParticles = 300
	cfg.Seed = 3
	pipe, err := rfid.NewPipeline(cfg)
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	events, err := pipe.Run(epochs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no events emitted")
	}
	if got := len(pipe.TrackedObjects()); got != 10 {
		t.Errorf("tracked %d objects, want 10", got)
	}
	rep := rfid.ScoreAgainstTrace(events, trace)
	if rep.Count != 10 {
		t.Errorf("scored %d objects", rep.Count)
	}
	if rep.MeanXY > 0.7 {
		t.Errorf("mean XY error %.3f ft through the public API", rep.MeanXY)
	}
	if pipe.Stats().Readings == 0 {
		t.Error("stats empty")
	}
	// Per-object estimates are reachable too.
	if _, _, ok := pipe.Estimate(trace.ObjectIDs[0]); !ok {
		t.Error("estimate for a tracked object unavailable")
	}
}

func TestPublicCalibration(t *testing.T) {
	trace := simulateSmall(t, 16, 5)
	calCfg := rfid.DefaultCalibrationConfig()
	calCfg.Iterations = 2
	calCfg.ObjectParticles = 80
	res, err := rfid.Calibrate(trace.Epochs, trace.World, rfid.DefaultParams(), calCfg)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	if res.Params.Sensor.EffectiveRange(0.5) <= 0 {
		t.Error("calibrated sensor has no effective range")
	}
	// The calibrated parameters drive a pipeline at least as well as the
	// defaults on the same trace.
	cfg := rfid.DefaultConfig(res.Params, trace.World)
	cfg.NumObjectParticles = 300
	pipe, err := rfid.NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events, err := pipe.Run(trace.Epochs)
	if err != nil {
		t.Fatal(err)
	}
	if rep := rfid.ScoreAgainstTrace(events, trace); rep.MeanXY > 0.7 {
		t.Errorf("calibrated pipeline error %.3f ft", rep.MeanXY)
	}
}

func TestPublicQueries(t *testing.T) {
	trace := simulateSmall(t, 12, 7)
	cfg := rfid.DefaultConfig(rfid.DefaultParams(), trace.World)
	cfg.ReportPolicy = rfid.ReportEveryEpoch
	cfg.NumObjectParticles = 200
	pipe, err := rfid.NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events, err := pipe.Run(trace.Epochs)
	if err != nil {
		t.Fatal(err)
	}

	updates := rfid.NewLocationUpdateQuery(0.25).Run(events)
	if len(updates) == 0 {
		t.Error("location-update query produced nothing")
	}

	fire := rfid.NewFireCodeQuery(rfid.FireCodeConfig{
		WindowEpochs:    5,
		ThresholdPounds: 100,
		Weight:          func(rfid.TagID) float64 { return 80 },
	})
	violations := fire.Run(events)
	// With 80-pound objects half a foot apart, some square foot must exceed
	// 100 pounds at some point during the scan.
	if len(violations) == 0 {
		t.Error("fire-code query produced no violations")
	}
}

func TestPublicBaselines(t *testing.T) {
	labCfg := rfid.DefaultLabConfig()
	labCfg.Seed = 11
	trace, err := rfid.SimulateLab(labCfg)
	if err != nil {
		t.Fatalf("SimulateLab: %v", err)
	}
	smurfEvents := rfid.NewSMURF(rfid.SMURFConfig{ReadRange: 2.5, Seed: 1}, trace.World).Run(trace.Epochs)
	uniformEvents := rfid.NewUniformBaseline(rfid.SMURFConfig{ReadRange: 2.5, Seed: 1}, trace.World).Run(trace.Epochs)
	if len(smurfEvents) == 0 || len(uniformEvents) == 0 {
		t.Fatal("baselines produced no events")
	}
	smurfRep := rfid.ScoreAgainstTrace(smurfEvents, trace)
	uniformRep := rfid.ScoreAgainstTrace(uniformEvents, trace)
	if smurfRep.MeanXY <= 0 || uniformRep.MeanXY <= 0 {
		t.Error("baseline errors look wrong")
	}
}

func TestPublicCSVRoundTrip(t *testing.T) {
	trace := simulateSmall(t, 5, 13)
	readings, locations := rfid.RawStreams(trace)

	var buf bytes.Buffer
	if err := rfid.WriteReadingsCSV(&buf, readings); err != nil {
		t.Fatal(err)
	}
	gotReadings, err := rfid.ReadReadingsCSV(&buf)
	if err != nil || len(gotReadings) != len(readings) {
		t.Fatalf("readings round trip: %v (%d)", err, len(gotReadings))
	}

	buf.Reset()
	if err := rfid.WriteLocationsCSV(&buf, locations); err != nil {
		t.Fatal(err)
	}
	gotLocations, err := rfid.ReadLocationsCSV(&buf)
	if err != nil || len(gotLocations) != len(locations) {
		t.Fatalf("locations round trip: %v", err)
	}
}

func TestPublicWorldConstruction(t *testing.T) {
	w := rfid.NewWorld()
	w.AddShelf(rfid.Shelf{ID: "s", Region: rfid.NewBBox(rfid.Vec3{X: 0, Y: 0}, rfid.Vec3{X: 1, Y: 10})})
	w.AddShelfTag("ref", rfid.Vec3{X: 0, Y: 5})
	cfg := rfid.DefaultConfig(rfid.DefaultParams(), w)
	if _, err := rfid.NewPipeline(cfg); err != nil {
		t.Fatalf("pipeline over a hand-built world: %v", err)
	}
	// Invalid configuration is rejected.
	bad := cfg
	bad.Factored = false
	bad.SpatialIndex = true
	if _, err := rfid.NewPipeline(bad); err == nil {
		t.Error("expected config validation error")
	}
}

// TestPublicShardedPipeline verifies the parallel engine through the public
// API: Config.Workers > 1 routes to the sharded engine and its output is
// identical to the serial pipeline's.
func TestPublicShardedPipeline(t *testing.T) {
	trace := simulateSmall(t, 8, 9)
	cfg := rfid.DefaultConfig(rfid.DefaultParams(), trace.World)
	cfg.NumObjectParticles = 150
	cfg.Seed = 9

	serial, err := rfid.NewPipeline(cfg)
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	want, err := serial.Run(trace.Epochs)
	if err != nil {
		t.Fatalf("serial Run: %v", err)
	}

	cfg.Workers = 4
	par, err := rfid.NewPipeline(cfg)
	if err != nil {
		t.Fatalf("NewPipeline(Workers=4): %v", err)
	}
	got, err := par.Run(trace.Epochs)
	if err != nil {
		t.Fatalf("parallel Run: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("event counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d differs: %v vs %v", i, got[i], want[i])
		}
	}

	// NewShardedPipeline with default workers also works.
	sp, err := rfid.NewShardedPipeline(cfg)
	if err != nil {
		t.Fatalf("NewShardedPipeline: %v", err)
	}
	if _, err := sp.Run(trace.Epochs); err != nil {
		t.Fatalf("sharded Run: %v", err)
	}
	// The sharded pipeline rejects non-factored configurations.
	bad := cfg
	bad.Factored = false
	bad.SpatialIndex = false
	bad.Compression = false
	if _, err := rfid.NewShardedPipeline(bad); err == nil {
		t.Error("NewShardedPipeline should reject non-factored configs")
	}
}
