package rfid_test

import (
	"reflect"
	"testing"

	"repro/rfid"
)

// runnerConfig is the engine configuration shared by the Runner tests.
func runnerConfig(trace *rfid.Trace) rfid.Config {
	cfg := rfid.DefaultConfig(rfid.DefaultParams(), trace.World)
	cfg.NumObjectParticles = 200
	cfg.NumReaderParticles = 50
	cfg.Seed = 11
	cfg.ReportPolicy = rfid.ReportEveryEpoch
	return cfg
}

// TestRunnerMatchesBatchPipeline pins the core property of the continuous
// driver: ingesting a trace incrementally (one epoch's raw records per batch,
// advancing after each) produces exactly the events of a batch Pipeline.Run
// over the synchronized trace.
func TestRunnerMatchesBatchPipeline(t *testing.T) {
	trace := simulateSmall(t, 8, 11)
	readings, locations := rfid.RawStreams(trace)

	// Batch reference run.
	pipe, err := rfid.NewPipeline(runnerConfig(trace))
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	want, err := pipe.Run(rfid.Synchronize(readings, locations))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	// Continuous run: group raw records by epoch, ingest epoch by epoch.
	byTime := make(map[int]struct {
		r []rfid.Reading
		l []rfid.LocationReport
	})
	maxT := 0
	for _, r := range readings {
		b := byTime[r.Time]
		b.r = append(b.r, r)
		byTime[r.Time] = b
		if r.Time > maxT {
			maxT = r.Time
		}
	}
	for _, l := range locations {
		b := byTime[l.Time]
		b.l = append(b.l, l)
		byTime[l.Time] = b
		if l.Time > maxT {
			maxT = l.Time
		}
	}

	runner, err := rfid.NewRunner(runnerConfig(trace), rfid.RunnerConfig{})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	var got []rfid.Event
	for ti := 0; ti <= maxT; ti++ {
		b, ok := byTime[ti]
		if !ok {
			continue
		}
		runner.Ingest(b.r, b.l)
		events, err := runner.Advance()
		if err != nil {
			t.Fatalf("Advance at t=%d: %v", ti, err)
		}
		got = append(got, events...)
	}
	final, err := runner.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	got = append(got, final...)

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("continuous run diverged from batch run: %d vs %d events", len(got), len(want))
	}
	st := runner.Stats()
	if st.Epochs != len(trace.Epochs) {
		t.Errorf("processed %d epochs, trace has %d", st.Epochs, len(trace.Epochs))
	}
	if st.Particles == 0 {
		t.Error("Particles gauge is zero after processing")
	}
}

// TestRunnerShardedMatchesSerial pins that the continuous driver preserves
// the sharded engine's serial-equivalence guarantee.
func TestRunnerShardedMatchesSerial(t *testing.T) {
	trace := simulateSmall(t, 8, 12)
	readings, locations := rfid.RawStreams(trace)

	run := func(rc rfid.RunnerConfig, workers int) []rfid.Event {
		cfg := runnerConfig(trace)
		cfg.Workers = workers
		runner, err := rfid.NewRunner(cfg, rc)
		if err != nil {
			t.Fatalf("NewRunner: %v", err)
		}
		runner.Ingest(readings, locations)
		events, err := runner.Close()
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
		return events
	}

	serial := run(rfid.RunnerConfig{}, 1)
	sharded := run(rfid.RunnerConfig{Sharded: true}, 2)
	if !reflect.DeepEqual(serial, sharded) {
		t.Fatal("sharded continuous run diverged from serial continuous run")
	}
}

// TestRunnerHoldAndLateness covers the external clocking rules: the hold
// slack keeps recent epochs buffered, Flush overrides it, and records behind
// the processed frontier are dropped as late.
func TestRunnerHoldAndLateness(t *testing.T) {
	trace := simulateSmall(t, 4, 13)
	cfg := runnerConfig(trace)
	runner, err := rfid.NewRunner(cfg, rfid.RunnerConfig{HoldEpochs: 2})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}

	readings, locations := rfid.RawStreams(trace)
	rep := runner.Ingest(readings, locations)
	if rep.LateDropped != 0 {
		t.Fatalf("fresh ingest dropped %d records", rep.LateDropped)
	}

	if _, err := runner.Advance(); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	st := runner.Stats()
	if st.BufferedEpochs == 0 {
		t.Fatal("hold slack should leave the last epochs buffered")
	}
	if st.NextEpoch > st.Watermark-2+1 {
		t.Fatalf("advance processed into the hold window: next=%d watermark=%d", st.NextEpoch, st.Watermark)
	}

	if _, err := runner.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	st = runner.Stats()
	if st.BufferedEpochs != 0 {
		t.Fatalf("flush left %d epochs buffered", st.BufferedEpochs)
	}

	// Everything is processed now, so re-ingesting the same records must be
	// dropped as late.
	rep = runner.Ingest(readings[:3], nil)
	if rep.Readings != 0 || rep.LateDropped != 3 {
		t.Fatalf("late ingest accepted: %+v", rep)
	}
	if runner.Stats().LateDropped != 3 {
		t.Fatalf("LateDropped = %d, want 3", runner.Stats().LateDropped)
	}
}

// TestRunnerSnapshots exercises the concurrent-read surface.
func TestRunnerSnapshots(t *testing.T) {
	trace := simulateSmall(t, 4, 14)
	runner, err := rfid.NewRunner(runnerConfig(trace), rfid.RunnerConfig{})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	readings, locations := rfid.RawStreams(trace)
	runner.Ingest(readings, locations)
	if _, err := runner.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	tags := runner.Tracked()
	if len(tags) != 4 {
		t.Fatalf("tracked %d objects, want 4", len(tags))
	}
	loc, st, ok := runner.Snapshot(tags[0])
	if !ok {
		t.Fatalf("Snapshot(%s) not found", tags[0])
	}
	if st.NumParticles == 0 && !st.Compressed {
		t.Error("snapshot carries neither particles nor a compressed belief")
	}
	if loc == (rfid.Vec3{}) {
		t.Error("snapshot location is the zero vector")
	}
	if _, _, ok := runner.Snapshot("no-such-tag"); ok {
		t.Error("Snapshot of unknown tag reported found")
	}
	if pose := runner.ReaderSnapshot(); pose.Pos == (rfid.Vec3{}) {
		t.Error("reader snapshot is the zero pose")
	}
}
