package repro

import (
	"runtime"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/sim"
)

// The benchmarks below regenerate the paper's tables and figures (one
// benchmark per artifact, named after it) and add per-reading micro
// benchmarks and ablations for the design choices called out in DESIGN.md.
//
// The experiment benchmarks run the corresponding driver at a reduced scale
// so the whole suite completes in minutes; run cmd/rfidbench with
// -scale 0.5..1.0 for results closer to the paper's experiment sizes.

// benchOpts is the scale used for the experiment-reproduction benchmarks.
func benchOpts() experiments.Options { return experiments.Options{Scale: 0.15, Seed: 1} }

func runExperimentBench(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(id, benchOpts())
		if err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", id)
		}
	}
}

// BenchmarkFig5SensorLearning regenerates Fig. 5(a)-(d): learned sensor
// models compared against the ground-truth profiles.
func BenchmarkFig5SensorLearning(b *testing.B) { runExperimentBench(b, "fig5bcd") }

// BenchmarkFig5eLearnedModels regenerates Fig. 5(e): inference error vs the
// number of shelf tags available to calibration.
func BenchmarkFig5eLearnedModels(b *testing.B) { runExperimentBench(b, "fig5e") }

// BenchmarkFig5fReadRate regenerates Fig. 5(f): inference error vs the major
// detection range read rate.
func BenchmarkFig5fReadRate(b *testing.B) { runExperimentBench(b, "fig5f") }

// BenchmarkFig5gLocationNoise regenerates Fig. 5(g): inference error vs the
// systematic reader-location error.
func BenchmarkFig5gLocationNoise(b *testing.B) { runExperimentBench(b, "fig5g") }

// BenchmarkFig5hMovement regenerates Fig. 5(h): inference error vs object
// movement distance.
func BenchmarkFig5hMovement(b *testing.B) { runExperimentBench(b, "fig5h") }

// BenchmarkFig5iScalabilityError regenerates Fig. 5(i): inference error vs
// the number of objects for the four system variants.
func BenchmarkFig5iScalabilityError(b *testing.B) { runExperimentBench(b, "fig5i") }

// BenchmarkFig5jScalabilityTime regenerates Fig. 5(j): CPU time per reading
// vs the number of objects for the four system variants.
func BenchmarkFig5jScalabilityTime(b *testing.B) { runExperimentBench(b, "fig5j") }

// BenchmarkTable6bLabComparison regenerates the table of Fig. 6(b): our
// system vs improved SMURF vs uniform sampling on the emulated lab
// deployment.
func BenchmarkTable6bLabComparison(b *testing.B) { runExperimentBench(b, "table6b") }

// BenchmarkHeadline regenerates the headline claims (error reduction over
// SMURF, sustained throughput).
func BenchmarkHeadline(b *testing.B) { runExperimentBench(b, "headline") }

// ---------------------------------------------------------------------------
// Per-reading micro benchmarks: the processing cost of one reading under each
// system variant (the quantity plotted in Fig. 5(j)), measured directly.

// benchParams mirrors the warehouse inference parameters used by the
// experiments.
func benchParams() model.Params {
	return model.DefaultParams()
}

func benchTrace(b *testing.B, objects int) *sim.Trace {
	b.Helper()
	cfg := sim.DefaultWarehouseConfig()
	cfg.NumObjects = objects
	cfg.NumShelfTags = 4
	cfg.ObjectSpacing = 0.25
	cfg.RowsDeep = 4
	cfg.Rounds = 2
	cfg.Seed = 42
	trace, err := sim.GenerateWarehouse(cfg)
	if err != nil {
		b.Fatalf("GenerateWarehouse: %v", err)
	}
	return trace
}

func benchEngineVariant(b *testing.B, objects int, factored, index, compression bool, particles int) {
	trace := benchTrace(b, objects)
	readings := trace.NumReadings()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig(benchParams(), trace.World)
		cfg.Factored = factored
		cfg.SpatialIndex = index
		cfg.Compression = compression
		cfg.NumObjectParticles = particles
		cfg.NumBasicParticles = 2000
		cfg.NumReaderParticles = 50
		cfg.Seed = 7
		eng, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, ep := range trace.Epochs {
			if _, err := eng.ProcessEpoch(ep); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if readings > 0 {
		perReading := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(readings)
		b.ReportMetric(perReading, "ns/reading")
	}
}

// BenchmarkPerReadingBasic measures the basic (unfactorized) filter on a tiny
// warehouse; this is the paper's slowest configuration.
func BenchmarkPerReadingBasic(b *testing.B) { benchEngineVariant(b, 10, false, false, false, 0) }

// BenchmarkPerReadingFactored measures the factored filter without spatial
// indexing or compression.
func BenchmarkPerReadingFactored(b *testing.B) { benchEngineVariant(b, 100, true, false, false, 200) }

// BenchmarkPerReadingFactoredIndex adds the spatial index.
func BenchmarkPerReadingFactoredIndex(b *testing.B) {
	benchEngineVariant(b, 100, true, true, false, 200)
}

// BenchmarkPerReadingFullSystem adds belief compression (the configuration
// the paper reports at over 1500 readings per second).
func BenchmarkPerReadingFullSystem(b *testing.B) { benchEngineVariant(b, 100, true, true, true, 200) }

// ---------------------------------------------------------------------------
// Ablation benchmarks for the design choices listed in DESIGN.md.

// BenchmarkAblationObjectParticles sweeps the per-object particle count,
// showing the cost/accuracy lever behind the paper's choice of 1000.
func BenchmarkAblationObjectParticles(b *testing.B) {
	for _, particles := range []int{100, 300, 1000} {
		particles := particles
		b.Run(benchName("particles", particles), func(b *testing.B) {
			benchEngineVariant(b, 50, true, true, false, particles)
		})
	}
}

// BenchmarkAblationDecompressParticles sweeps the number of particles
// recreated when a compressed belief is read again (the paper uses 10).
func BenchmarkAblationDecompressParticles(b *testing.B) {
	trace := benchTrace(b, 100)
	for _, n := range []int{5, 10, 50} {
		n := n
		b.Run(benchName("decompress", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(benchParams(), trace.World)
				cfg.NumObjectParticles = 200
				cfg.NumReaderParticles = 50
				cfg.NumDecompressParticles = n
				cfg.Seed = 7
				eng, err := core.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				for _, ep := range trace.Epochs {
					if _, err := eng.ProcessEpoch(ep); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationSpatialIndexOnly isolates the spatial index benefit at a
// larger object count, where the factored filter without the index must touch
// every tracked object at every epoch.
func BenchmarkAblationSpatialIndexOnly(b *testing.B) {
	for _, indexed := range []bool{false, true} {
		indexed := indexed
		name := "index-off"
		if indexed {
			name = "index-on"
		}
		b.Run(name, func(b *testing.B) {
			benchEngineVariant(b, 400, true, indexed, false, 150)
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "-" + strconv.Itoa(v)
}

// ---------------------------------------------------------------------------
// Parallel-vs-serial benchmarks for the sharded engine. The serial baseline
// and the Workers=1 sharded run bound the sharding overhead; the
// Workers=GOMAXPROCS run shows the speedup (a no-op on single-CPU machines).

func benchShardedVariant(b *testing.B, objects, workers int) {
	trace := benchTrace(b, objects)
	readings := trace.NumReadings()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig(benchParams(), trace.World)
		cfg.Compression = false // keep beliefs particle-backed: maximum per-object work
		cfg.NumObjectParticles = 150
		cfg.NumReaderParticles = 50
		cfg.Workers = workers
		cfg.Seed = 7
		eng, err := core.NewSharded(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, ep := range trace.Epochs {
			if _, err := eng.ProcessEpoch(ep); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if readings > 0 {
		perReading := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(readings)
		b.ReportMetric(perReading, "ns/reading")
	}
}

// BenchmarkShardedVsSerial compares the serial engine against the sharded
// engine at 1, 2 and GOMAXPROCS workers on the scalability workload.
func BenchmarkShardedVsSerial(b *testing.B) {
	const objects = 300
	b.Run("serial", func(b *testing.B) {
		benchEngineVariant(b, objects, true, true, false, 150)
	})
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, w := range workerCounts {
		if seen[w] {
			continue
		}
		seen[w] = true
		w := w
		b.Run(benchName("workers", w), func(b *testing.B) {
			benchShardedVariant(b, objects, w)
		})
	}
}
