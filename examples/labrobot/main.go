// Labrobot: reproduce the real-deployment comparison of Section V-C on the
// emulated lab: two shelves of 80 tags scanned by a robot-mounted reader with
// dead-reckoning drift. The sensor model is calibrated from the trace's
// reference tags, then our system is compared against the improved SMURF
// baseline and uniform sampling.
package main

import (
	"fmt"
	"log"

	"repro/rfid"
)

func main() {
	log.SetFlags(0)

	for _, depth := range []float64{0.66, 2.6} {
		shelfName := "small shelf (0.66 x 4 ft)"
		if depth > 1 {
			shelfName = "large shelf (2.6 x 4 ft)"
		}
		fmt.Printf("=== %s, 500 ms timeout ===\n", shelfName)

		labCfg := rfid.DefaultLabConfig()
		labCfg.ShelfDepth = depth
		labCfg.TimeoutMillis = 500
		labCfg.Seed = 17
		trace, err := rfid.SimulateLab(labCfg)
		if err != nil {
			log.Fatalf("simulate lab: %v", err)
		}

		// Self-calibrate from the trace (the reference tags provide the known
		// locations EM needs).
		calCfg := rfid.DefaultCalibrationConfig()
		calCfg.Iterations = 2
		calCfg.ObjectParticles = 150
		cal, err := rfid.Calibrate(trace.Epochs, trace.World, rfid.DefaultParams(), calCfg)
		if err != nil {
			log.Fatalf("calibrate: %v", err)
		}
		params := cal.Params
		fmt.Printf("learned sensor range (50%% read rate): %.2f ft\n", params.Sensor.EffectiveRange(0.5))

		// Our system.
		cfg := rfid.DefaultConfig(params, trace.World)
		cfg.SpatialIndex = false
		cfg.Compression = false
		cfg.NumObjectParticles = 400
		cfg.Seed = 17
		pipe, err := rfid.NewPipeline(cfg)
		if err != nil {
			log.Fatalf("pipeline: %v", err)
		}
		ourEvents, err := pipe.Run(trace.Epochs)
		if err != nil {
			log.Fatalf("run: %v", err)
		}
		ours := rfid.ScoreAgainstTrace(ourEvents, trace)

		// Improved SMURF, offered the read range from our learned model.
		smCfg := rfid.SMURFConfig{ReadRange: params.Sensor.EffectiveRange(0.1), Seed: 17}
		smEvents := rfid.NewSMURF(smCfg, trace.World).Run(trace.Epochs)
		smurfRep := rfid.ScoreAgainstTrace(smEvents, trace)

		// Uniform sampling baseline.
		uniEvents := rfid.NewUniformBaseline(smCfg, trace.World).Run(trace.Epochs)
		uniRep := rfid.ScoreAgainstTrace(uniEvents, trace)

		fmt.Printf("%-18s %8s %8s %8s\n", "algorithm", "X (ft)", "Y (ft)", "XY (ft)")
		fmt.Printf("%-18s %8.2f %8.2f %8.2f\n", "our system", ours.MeanX, ours.MeanY, ours.MeanXY)
		fmt.Printf("%-18s %8.2f %8.2f %8.2f\n", "SMURF (improved)", smurfRep.MeanX, smurfRep.MeanY, smurfRep.MeanXY)
		fmt.Printf("%-18s %8.2f %8.2f %8.2f\n", "uniform sampling", uniRep.MeanX, uniRep.MeanY, uniRep.MeanXY)
		if smurfRep.MeanXY > 0 {
			fmt.Printf("error reduction over SMURF: %.0f%%\n\n", 100*(smurfRep.MeanXY-ours.MeanXY)/smurfRep.MeanXY)
		}
	}
}
