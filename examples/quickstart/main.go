// Quickstart: simulate a small warehouse scan with a mobile RFID reader,
// clean the noisy raw streams with the inference pipeline and print the
// resulting location events next to the ground truth.
package main

import (
	"fmt"
	"log"

	"repro/rfid"
)

func main() {
	log.SetFlags(0)

	// 1. Simulate a mobile reader scanning 12 tagged objects on a shelf row
	//    with 4 reference (shelf) tags. In a real deployment the two raw
	//    streams would come from the reader and the positioning system.
	simCfg := rfid.DefaultWarehouseConfig()
	simCfg.NumObjects = 12
	simCfg.NumShelfTags = 4
	simCfg.Seed = 7
	trace, err := rfid.SimulateWarehouse(simCfg)
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}
	readings, locations := rfid.RawStreams(trace)
	fmt.Printf("raw input: %d tag readings, %d location reports\n", len(readings), len(locations))

	// 2. Synchronize the two raw streams into per-second epochs.
	epochs := rfid.Synchronize(readings, locations)

	// 3. Build the cleaning pipeline. DefaultConfig enables the factored
	//    particle filter, spatial indexing and belief compression.
	cfg := rfid.DefaultConfig(rfid.DefaultParams(), trace.World)
	cfg.NumObjectParticles = 500
	cfg.Seed = 7
	pipe, err := rfid.NewPipeline(cfg)
	if err != nil {
		log.Fatalf("pipeline: %v", err)
	}

	// 4. Stream the epochs through the pipeline and collect location events.
	events, err := pipe.Run(epochs)
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	// 5. Print the final estimate per object next to the true location.
	fmt.Println("\ntag            estimated (x, y)        true (x, y)        error (ft)")
	final := map[rfid.TagID]rfid.Event{}
	for _, ev := range events {
		final[ev.Tag] = ev
	}
	for _, id := range trace.ObjectIDs {
		ev, ok := final[id]
		if !ok {
			fmt.Printf("%-14s (never estimated)\n", id)
			continue
		}
		trueLoc, _ := trace.Truth.ObjectAt(id, ev.Time)
		fmt.Printf("%-14s (%6.2f, %6.2f)        (%6.2f, %6.2f)      %.2f\n",
			id, ev.Loc.X, ev.Loc.Y, trueLoc.X, trueLoc.Y, ev.Loc.DistXY(trueLoc))
	}

	rep := rfid.ScoreAgainstTrace(events, trace)
	fmt.Printf("\nmean XY error: %.2f ft over %d objects (reader processed %d readings)\n",
		rep.MeanXY, rep.Count, pipe.Stats().Readings)
}
