// Multisession: run two isolated inference sessions — two sites with
// different worlds, seeds and particle budgets — inside ONE serving process,
// drive both over HTTP through the typed rfid/client SDK, and stream each
// site's continuous-query results back with long-polling.
//
// The example embeds the serving layer in-process (exactly what cmd/rfidserve
// wraps behind a listener) so it runs standalone; point client.New at a real
// rfidserve URL and everything below works unchanged.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"repro/internal/serve"
	"repro/rfid"
	"repro/rfid/api"
	"repro/rfid/client"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// 1. Start a serving process. The flags-configured runner becomes the
	//    reserved "default" session; the sessions we create next are fully
	//    isolated from it and from each other.
	world := rfid.NewWorld()
	world.AddShelf(rfid.Shelf{ID: "floor", Region: rfid.NewBBox(rfid.Vec3{}, rfid.Vec3{X: 40, Y: 40, Z: 8})})
	cfg := rfid.DefaultConfig(rfid.DefaultParams(), world)
	cfg.ReportPolicy = rfid.ReportEveryEpoch
	runner, err := rfid.NewRunner(cfg, rfid.RunnerConfig{Sharded: true})
	if err != nil {
		log.Fatalf("runner: %v", err)
	}
	srv, err := serve.New(serve.Config{Runner: runner})
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// 2. Create one session per site through the v1 API. Different worlds,
	//    different seeds — each session is its own inference universe with
	//    its own engine, queries, metrics labels and (with -data-dir on
	//    rfidserve) its own WAL/checkpoint directory.
	c := client.New(ts.URL)
	if _, err := c.CreateSession(ctx, api.CreateSessionRequest{
		ID:     "warehouse-east",
		Source: api.SourceSynthetic, // 40x40 ft open floor
		Engine: &api.EngineConfig{ObjectParticles: 300, Seed: 1},
	}); err != nil {
		log.Fatalf("create warehouse-east: %v", err)
	}
	if _, err := c.CreateSession(ctx, api.CreateSessionRequest{
		ID:        "lab-west",
		Source:    api.SourceSynthetic,
		Synthetic: &api.SyntheticWorld{FloorX: 12, FloorY: 12, FloorZ: 4},
		Engine:    &api.EngineConfig{ObjectParticles: 150, Seed: 2},
	}); err != nil {
		log.Fatalf("create lab-west: %v", err)
	}
	sessions, _ := c.Sessions(ctx)
	fmt.Printf("sessions in one process: ")
	for _, s := range sessions {
		fmt.Printf("%s ", s.ID)
	}
	fmt.Println()

	// 3. Register a location-update query on each site and start a long-poll
	//    consumer per site BEFORE any data exists: the ?wait= parameter holds
	//    each request server-side until that site produces rows, so nothing
	//    hot-polls.
	type siteRows struct {
		site string
		rows []api.QueryResult
		err  error
	}
	delivered := make(chan siteRows, 2)
	for _, site := range []string{"warehouse-east", "lab-west"} {
		sess := c.Session(site)
		info, err := sess.RegisterQuery(ctx, api.QuerySpec{Kind: api.QueryLocationUpdates, MinChange: 0.01})
		if err != nil {
			log.Fatalf("register on %s: %v", site, err)
		}
		go func(site string) {
			page, err := sess.PollResults(ctx, info.ID, client.PollOptions{After: -1, Wait: 30 * time.Second})
			delivered <- siteRows{site, page.Results, err}
		}(site)
	}

	// 4. Ingest each site's raw stream. In production these batches arrive
	//    from per-site readers; a 202 on a durable server means the batch
	//    reached that session's write-ahead log.
	for epoch := 0; epoch < 6; epoch++ {
		for i, site := range []string{"warehouse-east", "lab-west"} {
			_, err := c.Session(site).Ingest(ctx, api.IngestRequest{
				Readings: []api.Reading{
					{Time: epoch, Tag: fmt.Sprintf("%s-item-1", site)},
					{Time: epoch, Tag: fmt.Sprintf("%s-item-2", site)},
				},
				Locations: []api.LocationReport{
					{Time: epoch, X: 1 + 0.2*float64(epoch), Y: 2 + float64(i), Z: 3},
				},
			})
			if err != nil {
				log.Fatalf("ingest %s: %v", site, err)
			}
		}
	}

	// 5. The long-pollers wake as soon as their site's results exist.
	for i := 0; i < 2; i++ {
		d := <-delivered
		if d.err != nil {
			log.Fatalf("poll %s: %v", d.site, d.err)
		}
		fmt.Printf("%s streamed %d location updates via long-poll; first: %s\n",
			d.site, len(d.rows), d.rows[0].Row)
	}

	// 6. Each session's state is isolated: the same item id can live in both
	//    worlds with independent estimates.
	for _, site := range []string{"warehouse-east", "lab-west"} {
		if _, err := c.Session(site).Flush(ctx, false); err != nil {
			log.Fatalf("flush %s: %v", site, err)
		}
		snap, err := c.Session(site).SnapshotTag(ctx, site+"-item-1")
		if err != nil {
			log.Fatalf("snapshot %s: %v", site, err)
		}
		fmt.Printf("%s item-1 estimate: (%.2f, %.2f, %.2f) ft, %d particles\n",
			site, snap.X, snap.Y, snap.Z, snap.NumParticles)
	}

	// 7. Structured errors are typed end to end.
	if _, err := c.GetSession(ctx, "no-such-site"); err != nil {
		fmt.Printf("typed error for unknown session: %v\n", err)
	}
}
