// Calibration: demonstrate the self-calibration of Section III-C. A training
// trace of 20 tags is generated; EM learns the sensor model using a varying
// number of tags with known locations (shelf tags), and the learned models
// are compared against the true cone profile used by the simulator — the
// text-mode counterpart of Fig. 5(a)-(c) and 5(e).
package main

import (
	"fmt"
	"log"

	"repro/internal/learn"
	"repro/internal/sensor"
	"repro/internal/sim"
	"repro/rfid"
)

func main() {
	log.SetFlags(0)

	// Training trace: 20 tags, all of which have known locations; we then
	// pretend only the first N are known.
	simCfg := rfid.DefaultWarehouseConfig()
	simCfg.NumObjects = 20
	simCfg.NumShelfTags = 20
	simCfg.Seed = 5
	trace, err := rfid.SimulateWarehouse(simCfg)
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}

	trueGrid := sensor.SampleProfileGrid(sensor.DefaultConeProfile(), 0, 5, -2.5, 2.5, 30, 30)
	fmt.Println("true sensor model (cone of Fig. 5a), reader at the left edge facing right:")
	fmt.Print(sensor.SampleProfileGrid(sensor.DefaultConeProfile(), 0, 4, -2, 2, 44, 20).ASCIIArt())

	fmt.Println("\nshelf tags used    grid difference vs true model    on-axis 50% range (ft)")
	for _, n := range []int{20, 4, 0} {
		training := trace.SplitForTraining(n)
		cfg := rfid.DefaultCalibrationConfig()
		cfg.Iterations = 3
		cfg.ObjectParticles = 200
		res, err := rfid.Calibrate(training.Epochs, training.World, rfid.DefaultParams(), cfg)
		if err != nil {
			log.Fatalf("calibrate with %d shelf tags: %v", n, err)
		}
		grid := sensor.SampleProfileGrid(sensor.ModelProfile{Model: res.Params.Sensor}, 0, 5, -2.5, 2.5, 30, 30)
		fmt.Printf("%-18d %-32.3f %.2f\n", n, grid.MeanAbsDifference(trueGrid), res.Params.Sensor.EffectiveRange(0.5))
		if n == 20 {
			fmt.Println("\nlearned with 20 shelf tags (compare with the true cone above):")
			fmt.Print(sensor.SampleProfileGrid(sensor.ModelProfile{Model: res.Params.Sensor}, 0, 4, -2, 2, 44, 20).ASCIIArt())
			fmt.Println()
		}
	}

	// Reference: the best the parametric family can do, fitted directly to
	// the cone.
	direct, err := learn.FitModelToProfile(sim.DefaultWarehouseConfig().Profile, 4, rfid.DefaultCalibrationConfig().FitOptions)
	if err != nil {
		log.Fatalf("direct fit: %v", err)
	}
	directGrid := sensor.SampleProfileGrid(sensor.ModelProfile{Model: direct}, 0, 5, -2.5, 2.5, 30, 30)
	fmt.Printf("\ndirect parametric fit of the true cone: grid difference %.3f (lower bound for EM)\n",
		directGrid.MeanAbsDifference(trueGrid))
}
