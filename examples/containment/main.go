// Containment: demonstrate the library's extension of the paper's future-work
// item — inferring which container each item sits in from the clean location
// event stream. Tagged cases sit on a shelf with tagged items packed inside
// them (within a fraction of a foot); a mobile reader scans the shelf twice,
// and between the scans one case is moved to a new slot together with its
// items. The containment tracker consumes one location snapshot per scan and
// reports item-in-case facts with confidence scores.
package main

import (
	"fmt"
	"log"

	"repro/rfid"
)

func main() {
	log.SetFlags(0)

	// Build the world by hand: one shelf row along y at x in [0, 0.6].
	world := rfid.NewWorld()
	world.AddShelf(rfid.Shelf{
		ID:     "shelf",
		Region: rfid.NewBBox(rfid.Vec3{X: 0, Y: 0}, rfid.Vec3{X: 0.6, Y: 16}),
	})
	for i := 0; i < 4; i++ {
		world.AddShelfTag(rfid.TagID(fmt.Sprintf("shelf-%03d", i)), rfid.Vec3{X: 0, Y: float64(i)*4 + 2})
	}

	// Three cases, each holding two items packed 0.2-0.3 ft around the case
	// tag; case-1 moves 6 ft down the shelf between the two scans.
	layout := []tagged{
		{"case-0", rfid.Vec3{X: 0.1, Y: 2.0}, rfid.Vec3{X: 0.1, Y: 2.0}},
		{"item-0a", rfid.Vec3{X: 0.3, Y: 1.9}, rfid.Vec3{X: 0.3, Y: 1.9}},
		{"item-0b", rfid.Vec3{X: 0.2, Y: 2.2}, rfid.Vec3{X: 0.2, Y: 2.2}},
		{"case-1", rfid.Vec3{X: 0.1, Y: 6.0}, rfid.Vec3{X: 0.1, Y: 12.0}},
		{"item-1a", rfid.Vec3{X: 0.3, Y: 5.8}, rfid.Vec3{X: 0.3, Y: 11.8}},
		{"item-1b", rfid.Vec3{X: 0.2, Y: 6.3}, rfid.Vec3{X: 0.2, Y: 12.3}},
		{"case-2", rfid.Vec3{X: 0.1, Y: 9.0}, rfid.Vec3{X: 0.1, Y: 9.0}},
		{"item-2a", rfid.Vec3{X: 0.25, Y: 9.2}, rfid.Vec3{X: 0.25, Y: 9.2}},
		{"loose-item", rfid.Vec3{X: 0.2, Y: 14.0}, rfid.Vec3{X: 0.2, Y: 14.0}},
	}
	containers := []rfid.TagID{"case-0", "case-1", "case-2"}

	tracker := rfid.NewContainmentTracker(rfid.DefaultContainmentConfig(), containers)

	// Two scans; each produces a clean event snapshot via the pipeline.
	for scan := 0; scan < 2; scan++ {
		epochs := simulateScan(layout, scan)
		cfg := rfid.DefaultConfig(rfid.DefaultParams(), world)
		cfg.NumObjectParticles = 400
		cfg.Seed = int64(100 + scan)
		pipe, err := rfid.NewPipeline(cfg)
		if err != nil {
			log.Fatalf("pipeline: %v", err)
		}
		events, err := pipe.Run(epochs)
		if err != nil {
			log.Fatalf("run scan %d: %v", scan, err)
		}
		tracker.AddEvents(scan, events)
		fmt.Printf("scan %d: %d events, %d objects tracked\n", scan+1, len(events), len(pipe.TrackedObjects()))
	}

	fmt.Println("\ninferred containment facts:")
	facts := tracker.Facts()
	if len(facts) == 0 {
		fmt.Println("  (none)")
	}
	for _, f := range facts {
		fmt.Printf("  %s\n", f)
	}
	fmt.Println("\nnote: the loose item and the cases themselves should not appear as contained items;")
	fmt.Println("case-1 moved between the scans, so its items gain extra confidence from moving with it.")
}

// tagged is one tag with its true location during the first and second scan.
type tagged struct {
	id   rfid.TagID
	at   rfid.Vec3
	then rfid.Vec3
}

// simulateScan generates the raw epochs of one pass of a reader over the
// shelf, reading tags at their scan-specific true locations with a simple
// distance/angle-dependent probability, then synchronizes them.
func simulateScan(layout []tagged, scan int) []*rfid.Epoch {
	profile := rfid.DefaultConeProfile()
	var readings []rfid.Reading
	var locations []rfid.LocationReport
	// A deterministic pseudo-random sequence keeps the example reproducible
	// without exposing RNG plumbing.
	next := uint32(12345 + scan*999)
	rand01 := func() float64 {
		next = next*1664525 + 1013904223
		return float64(next%10000) / 10000
	}
	for t := 0; t < 160; t++ {
		pos := rfid.Vec3{X: -1.5, Y: float64(t) * 0.1}
		locations = append(locations, rfid.LocationReport{Time: t, Pos: pos, HasPhi: true})
		pose := rfid.Pose{Pos: pos}
		for _, tag := range layout {
			loc := tag.at
			if scan == 1 {
				loc = tag.then
			}
			if rand01() < profile.DetectProb(pose, loc) {
				readings = append(readings, rfid.Reading{Time: t, Tag: tag.id})
			}
		}
		// Shelf tags: read reliably when nearby.
		for i := 0; i < 4; i++ {
			loc := rfid.Vec3{X: 0, Y: float64(i)*4 + 2}
			if rand01() < profile.DetectProb(pose, loc) {
				readings = append(readings, rfid.Reading{Time: t, Tag: rfid.TagID(fmt.Sprintf("shelf-%03d", i))})
			}
		}
	}
	return rfid.Synchronize(readings, locations)
}
