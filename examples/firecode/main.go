// Firecode: warehouse monitoring with the continuous queries of Section II-B.
// A mobile reader scans a shelf row on which several heavy objects are packed
// into the same square foot; the cleaned event stream is fed into the
// fire-code query ("display of solid merchandise shall not exceed 200 pounds
// per square foot of shelf area") and into the location-update query.
package main

import (
	"fmt"
	"log"

	"repro/rfid"
)

func main() {
	log.SetFlags(0)

	// Simulate a shelf row where objects are packed densely: four per foot of
	// shelf. With 60-pound objects, any square foot holding four or more of
	// them violates the 200-pound fire code.
	simCfg := rfid.DefaultWarehouseConfig()
	simCfg.NumObjects = 24
	simCfg.NumShelfTags = 4
	simCfg.ObjectSpacing = 0.25
	simCfg.Seed = 21
	trace, err := rfid.SimulateWarehouse(simCfg)
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}

	// Clean the raw streams. ReportEveryEpoch keeps the event stream dense so
	// the windowed query always has fresh locations to aggregate.
	cfg := rfid.DefaultConfig(rfid.DefaultParams(), trace.World)
	cfg.NumObjectParticles = 400
	cfg.ReportPolicy = rfid.ReportEveryEpoch
	cfg.Seed = 21
	pipe, err := rfid.NewPipeline(cfg)
	if err != nil {
		log.Fatalf("pipeline: %v", err)
	}
	events, err := pipe.Run(trace.Epochs)
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	fmt.Printf("cleaned event stream: %d events for %d objects\n", len(events), len(pipe.TrackedObjects()))

	// Fire-code query: every object weighs 60 pounds; the threshold is the
	// paper's 200 pounds per square foot over a 5-second window.
	fire := rfid.NewFireCodeQuery(rfid.FireCodeConfig{
		WindowEpochs:    5,
		ThresholdPounds: 200,
		Weight:          func(rfid.TagID) float64 { return 60 },
	})
	violations := fire.Run(events)
	areas := map[rfid.AreaID]float64{}
	for _, v := range violations {
		if v.TotalWeight > areas[v.Area] {
			areas[v.Area] = v.TotalWeight
		}
	}
	fmt.Printf("\nfire-code query: %d violation reports across %d distinct square-foot areas\n",
		len(violations), len(areas))
	for area, w := range areas {
		fmt.Printf("  area %v peaked at %.0f lb (limit 200 lb)\n", area, w)
	}

	// Location-update query: report objects whose estimated location changed
	// by more than half a foot between consecutive events.
	updates := rfid.NewLocationUpdateQuery(0.5).Run(events)
	moved := 0
	for _, u := range updates {
		if u.HasPrev {
			moved++
		}
	}
	fmt.Printf("\nlocation-update query: %d updates (%d of them genuine location changes > 0.5 ft)\n",
		len(updates), moved)
}
