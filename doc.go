// Package repro is the root of a from-scratch Go reproduction of
// "Probabilistic Inference over RFID Streams in Mobile Environments"
// (Tran, Sutton, Cocci, Nie, Diao, Shenoy; ICDE 2009).
//
// The public API lives in package repro/rfid. The implementation — the
// probabilistic data-generation model, the factored particle filter, spatial
// indexing over sensing regions, belief compression, the SMURF and uniform
// baselines, the warehouse and lab simulators and the experiment drivers that
// regenerate every table and figure of the paper's evaluation — lives under
// internal/. The benchmarks in bench_test.go regenerate the paper's tables
// and figures via `go test -bench`.
//
// Beyond the paper, the engine scales out: because the factored distribution
// makes per-object inference independent given the reader particles, the
// sharded engine (internal/core.ShardedEngine, reachable through
// rfid.Config.Workers) partitions objects across worker goroutines by a
// stable hash of their tag id and fans each epoch's per-object
// predict/update/resample work out to a pool, with a barrier before report
// emission. Per-object random streams derived from (seed, tag id) make the
// parallel output byte-identical to the serial engine's for any worker or
// shard count. See ARCHITECTURE.md for the shard/worker model, the epoch
// barrier and the reproducibility argument.
//
// The engine also runs online: rfid.Runner drives the pipeline continuously
// from incrementally ingested raw streams (epochs sealed by the ingest
// watermark, not a fixed trace), and the serving layer (internal/serve,
// command rfidserve) exposes it over HTTP — batched ingest with
// backpressure, live snapshots, registered continuous queries evaluated
// incrementally per epoch, and Prometheus-style metrics. The service is
// multi-tenant: sessions are first-class resources under the versioned /v1
// API, each an isolated inference world with its own engine, queries,
// metric labels and durability directory; the public wire schema lives in
// rfid/api (JSON DTOs plus a structured error envelope, decoupled from the
// internal types) and rfid/client is the typed Go SDK — session lifecycle,
// ingest, snapshots and long-polled result streaming — with no dependency
// on internal packages. README.md has the quickstart; API.md is the
// endpoint reference; ARCHITECTURE.md describes the serving layer's epoch
// clocking, session isolation and concurrency story.
//
// Serving state is durable: a segmented, CRC-checked write-ahead log
// (internal/wal) records every ingested batch before the engine applies it,
// a versioned binary codec (internal/checkpoint) serializes the full engine
// state — particle columns, reader poses, per-object random-stream
// positions, query-registry sequence state — and recovery (checkpoint + WAL
// tail replay) reproduces the interrupted run byte-exactly, even across a
// kill -9 and across different worker/shard counts. The same machinery backs
// time-travel reads: a bounded per-epoch history of sealed location
// estimates serves GET /snapshot?epoch=N and history-mode queries. See the
// "Durability & recovery" section of ARCHITECTURE.md.
package repro
