// Package repro is the root of a from-scratch Go reproduction of
// "Probabilistic Inference over RFID Streams in Mobile Environments"
// (Tran, Sutton, Cocci, Nie, Diao, Shenoy; ICDE 2009).
//
// The public API lives in package repro/rfid. The implementation — the
// probabilistic data-generation model, the factored particle filter, spatial
// indexing over sensing regions, belief compression, the SMURF and uniform
// baselines, the warehouse and lab simulators and the experiment drivers that
// regenerate every table and figure of the paper's evaluation — lives under
// internal/. The benchmarks in bench_test.go regenerate the paper's tables
// and figures via `go test -bench`.
package repro
